module D = Noc_graph.Digraph
module Edge_map = D.Edge_map
module Vmap = D.Vmap

type config = {
  router_delay : int;
  link_delay : int;
  flit_bits : int;
}

let default_config = { router_delay = 1; link_delay = 1; flit_bits = 8 }

type policy = Fixed | Adaptive | Oblivious of Noc_util.Prng.t

type delivery = { packet : Packet.t; delivered_at : int }

(* A packet currently at a router, waiting for (or about to request) its
   next channel. *)
type in_flight = {
  packet : Packet.t;
  mutable hop : int;  (* index into the planned route (Fixed policy) *)
  mutable node : int;  (* router currently holding the packet *)
  mutable trace : int list;  (* nodes visited, most recent first *)
}

type channel = {
  mutable busy_until : int;
  waiting : in_flight Queue.t;
}

type t = {
  arch : Noc_core.Synthesis.t;
  cfg : config;
  policy : policy;
  (* lazily computed hop distances to a destination over the topology *)
  dist_tables : (int, int Vmap.t) Hashtbl.t;
  traces : (int, int list) Hashtbl.t;  (* delivered packet id -> path *)
  mutable cycle : int;
  mutable next_id : int;
  mutable in_network : int;
  channels : (D.Edge.t, channel) Hashtbl.t;
  channel_order : D.Edge.t array;  (* fixed arbitration scan order *)
  (* arrivals.(future cycle) -> packets becoming ready at a router *)
  arrivals : (int, in_flight list ref) Hashtbl.t;
  mutable delivered_rev : delivery list;
  mutable drain_rev : delivery list;
  mutable flit_hops : int;
  mutable link_flits : int Edge_map.t;
  mutable switch_flits : int Vmap.t;
  mutable buffer_flit_cycles : int;
  mutable queued_flits : int;
  mutable contention_events : int;
}

let create ?(config = default_config) ?(policy = Fixed) arch =
  if config.router_delay < 1 || config.link_delay < 1 then
    invalid_arg "Network.create: delays must be >= 1";
  if config.flit_bits < 1 then invalid_arg "Network.create: flit_bits must be >= 1";
  let channels = Hashtbl.create 64 in
  let edges = D.edges arch.Noc_core.Synthesis.topology in
  List.iter
    (fun e -> Hashtbl.replace channels e { busy_until = 0; waiting = Queue.create () })
    edges;
  {
    arch;
    cfg = config;
    policy;
    dist_tables = Hashtbl.create 16;
    traces = Hashtbl.create 64;
    cycle = 0;
    next_id = 0;
    in_network = 0;
    channels;
    channel_order = Array.of_list edges;
    arrivals = Hashtbl.create 64;
    delivered_rev = [];
    drain_rev = [];
    flit_hops = 0;
    link_flits = Edge_map.empty;
    switch_flits = Vmap.empty;
    buffer_flit_cycles = 0;
    queued_flits = 0;
    contention_events = 0;
  }

let now t = t.cycle

let config t = t.cfg

let count_switch t node flits =
  t.switch_flits <-
    Vmap.add node (flits + Option.value ~default:0 (Vmap.find_opt node t.switch_flits))
      t.switch_flits

let schedule_arrival t at inf =
  let cell =
    match Hashtbl.find_opt t.arrivals at with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace t.arrivals at l;
        l
  in
  cell := inf :: !cell

let deliver t inf =
  t.in_network <- t.in_network - 1;
  Hashtbl.replace t.traces inf.packet.Packet.id (List.rev inf.trace);
  let d = { packet = inf.packet; delivered_at = t.cycle } in
  t.delivered_rev <- d :: t.delivered_rev;
  t.drain_rev <- d :: t.drain_rev

(* hop distances to [dst] over the (symmetric) topology, memoized *)
let distances_to t dst =
  match Hashtbl.find_opt t.dist_tables dst with
  | Some m -> m
  | None ->
      (* BFS from dst following predecessor links = distance-to-dst *)
      let topo = t.arch.Noc_core.Synthesis.topology in
      let m = Noc_graph.Traversal.bfs_distances (D.reverse topo) dst in
      Hashtbl.replace t.dist_tables dst m;
      m

(* the next hop under the adaptive/oblivious policies: a neighbor strictly
   closer to the destination *)
let choose_next t inf =
  let dst = inf.packet.Packet.dst in
  let node = inf.node in
  let dist = distances_to t dst in
  let here = match Vmap.find_opt node dist with Some d -> d | None -> max_int in
  let topo = t.arch.Noc_core.Synthesis.topology in
  let candidates =
    D.Vset.fold
      (fun n acc ->
        match Vmap.find_opt n dist with
        | Some d when d < here -> n :: acc
        | Some _ | None -> acc)
      (D.succ topo node) []
    |> List.sort Int.compare
  in
  match (candidates, t.policy) with
  | [], _ ->
      invalid_arg
        (Printf.sprintf "Network: no minimal next hop from %d towards %d" node dst)
  | _ :: _, Oblivious rng -> List.nth candidates (Noc_util.Prng.int rng (List.length candidates))
  | _ :: _, (Fixed | Adaptive) ->
      (* Adaptive: least backlog; ties by node id (the sort above) *)
      let backlog n =
        match Hashtbl.find_opt t.channels (node, n) with
        | Some ch ->
            let busy = max 0 (ch.busy_until - t.cycle) in
            busy + Queue.fold (fun acc i -> acc + i.packet.Packet.size_flits) 0 ch.waiting
        | None -> max_int
      in
      List.fold_left
        (fun best n ->
          match best with
          | None -> Some n
          | Some b -> if backlog n < backlog b then Some n else best)
        None candidates
      |> Option.get

(* A packet is ready at a router: either it is home, or it queues for its
   next channel (planned under Fixed, chosen per hop otherwise). *)
let route_or_deliver t inf =
  if inf.node = inf.packet.Packet.dst then deliver t inf
  else begin
    let next =
      match t.policy with
      | Fixed -> inf.packet.Packet.route.(inf.hop + 1)
      | Adaptive | Oblivious _ -> choose_next t inf
    in
    match Hashtbl.find_opt t.channels (inf.node, next) with
    | Some ch ->
        (* the channel is either mid-transmission or already has queued
           packets: this packet will stall at least one cycle *)
        if ch.busy_until > t.cycle || not (Queue.is_empty ch.waiting) then
          t.contention_events <- t.contention_events + 1;
        Queue.add inf ch.waiting;
        t.queued_flits <- t.queued_flits + inf.packet.Packet.size_flits
    | None ->
        invalid_arg
          (Printf.sprintf "Network: route uses missing link %d->%d" inf.node next)
  end

let inject ?(tag = 0) ?(payload = Bytes.empty) ?(size_flits = 1) t ~src ~dst =
  if size_flits < 1 then invalid_arg "Network.inject: size_flits must be >= 1";
  match Noc_core.Synthesis.route t.arch ~src ~dst with
  | None -> invalid_arg (Printf.sprintf "Network.inject: no route %d->%d" src dst)
  | Some path ->
      let id = t.next_id in
      t.next_id <- id + 1;
      let packet =
        {
          Packet.id;
          src;
          dst;
          size_flits;
          tag;
          payload;
          route = Array.of_list path;
          injected_at = t.cycle;
        }
      in
      t.in_network <- t.in_network + 1;
      count_switch t src size_flits;
      (* source router processing, then contend for the first channel *)
      schedule_arrival t
        (t.cycle + t.cfg.router_delay)
        { packet; hop = 0; node = src; trace = [ src ] };
      id

let step t =
  t.cycle <- t.cycle + 1;
  (* flits sitting in router queues burn retention energy this cycle *)
  t.buffer_flit_cycles <- t.buffer_flit_cycles + t.queued_flits;
  (* 1. packets becoming ready at routers this cycle *)
  (match Hashtbl.find_opt t.arrivals t.cycle with
  | Some cell ->
      Hashtbl.remove t.arrivals t.cycle;
      (* restore deterministic order: schedule_arrival prepends *)
      List.iter (route_or_deliver t) (List.rev !cell)
  | None -> ());
  (* 2. channel arbitration in fixed scan order *)
  Array.iter
    (fun e ->
      let ch = Hashtbl.find t.channels e in
      if ch.busy_until <= t.cycle && not (Queue.is_empty ch.waiting) then begin
        let inf = Queue.pop ch.waiting in
        let flits = inf.packet.Packet.size_flits in
        t.queued_flits <- t.queued_flits - flits;
        ch.busy_until <- t.cycle + flits;
        t.flit_hops <- t.flit_hops + flits;
        t.link_flits <-
          Edge_map.add e
            (flits + Option.value ~default:0 (Edge_map.find_opt e t.link_flits))
            t.link_flits;
        let _, v = e in
        count_switch t v flits;
        inf.hop <- inf.hop + 1;
        inf.node <- v;
        inf.trace <- v :: inf.trace;
        let tail_arrives = t.cycle + t.cfg.link_delay + flits - 1 in
        schedule_arrival t (tail_arrives + t.cfg.router_delay) inf
      end)
    t.channel_order

let pending t = t.in_network

let run_until_idle ?(max_cycles = 1_000_000) t =
  let start = t.cycle in
  let rec go () =
    if t.in_network = 0 then `Idle
    else if t.cycle - start >= max_cycles then `Limit
    else begin
      step t;
      go ()
    end
  in
  go ()

let deliveries t = List.rev t.delivered_rev

let drain_deliveries t =
  let ds = List.rev t.drain_rev in
  t.drain_rev <- [];
  ds

let arch t = t.arch

let route_taken t id = Hashtbl.find_opt t.traces id

let buffer_flit_cycles t = t.buffer_flit_cycles

let flit_hops t = t.flit_hops

let link_flits t = t.link_flits

let switch_flits t = t.switch_flits

let contention_events t = t.contention_events

let delivered_count t = List.length t.delivered_rev

let metrics t =
  let base =
    [
      ("cycles", float_of_int t.cycle);
      ("injected", float_of_int t.next_id);
      ("delivered", float_of_int (delivered_count t));
      ("in_network", float_of_int t.in_network);
      ("flit_hops", float_of_int t.flit_hops);
      ("buffer_flit_cycles", float_of_int t.buffer_flit_cycles);
      ("queued_flits", float_of_int t.queued_flits);
      ("contention_events", float_of_int t.contention_events);
    ]
  in
  let routers =
    Vmap.fold
      (fun v n acc -> (Printf.sprintf "router.%d.flits" v, float_of_int n) :: acc)
      t.switch_flits []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let links =
    Edge_map.fold
      (fun (u, v) n acc ->
        (Printf.sprintf "link.%d-%d.flits" u v, float_of_int n) :: acc)
      t.link_flits []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  base @ routers @ links
