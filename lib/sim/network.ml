module D = Noc_graph.Digraph
module Edge_map = D.Edge_map
module Vmap = D.Vmap

type config = {
  router_delay : int;
  link_delay : int;
  flit_bits : int;
}

let default_config = { router_delay = 1; link_delay = 1; flit_bits = 8 }

type fault_policy = {
  max_retries : int;
  backoff_base : int;
  backoff_cap : int;
}

let default_fault_policy = { max_retries = 8; backoff_base = 2; backoff_cap = 64 }

type policy = Fixed | Adaptive | Oblivious of Noc_util.Prng.t

type delivery = { packet : Packet.t; delivered_at : int }

type drop_reason = Link_failed | Switch_failed | No_route | Retries_exhausted

type drop = { packet : Packet.t; dropped_at : int; reason : drop_reason }

let pp_drop_reason ppf r =
  Format.pp_print_string ppf
    (match r with
    | Link_failed -> "link-failed"
    | Switch_failed -> "switch-failed"
    | No_route -> "no-route"
    | Retries_exhausted -> "retries-exhausted")

(* A packet currently at a router, waiting for (or about to request) its
   next channel. *)
type in_flight = {
  packet : Packet.t;
  mutable path : int array;  (* live plan; starts as the packet's route *)
  mutable hop : int;  (* index of [node] within [path] *)
  mutable node : int;  (* router currently holding the packet *)
  mutable trace : int list;  (* nodes visited, most recent first *)
  mutable retries : int;  (* source-NI retransmissions so far *)
  mutable on_link : D.Edge.t option;  (* channel last granted to the packet *)
  mutable wire_until : int;  (* cycle the tail lands downstream *)
}

type channel = {
  mutable busy_until : int;
  waiting : in_flight Queue.t;
}

type fault_event =
  | Fail_link of int * int
  | Repair_link of int * int
  | Fail_switch of int
  | Repair_switch of int

type t = {
  arch : Noc_core.Synthesis.t;
  cfg : config;
  policy : policy;
  fault_cfg : fault_policy;
  (* lazily computed hop distances to a destination over the live topology *)
  dist_tables : (int, int Vmap.t) Hashtbl.t;
  traces : (int, int list) Hashtbl.t;  (* delivered packet id -> path *)
  mutable cycle : int;
  mutable next_id : int;
  mutable in_network : int;
  channels : (D.Edge.t, channel) Hashtbl.t;
  channel_order : D.Edge.t array;  (* fixed arbitration scan order *)
  (* arrivals.(future cycle) -> packets becoming ready at a router *)
  arrivals : (int, in_flight list ref) Hashtbl.t;
  live : (int, in_flight) Hashtbl.t;  (* undelivered, undropped packets *)
  mutable live_topology : D.t;  (* arch topology minus current faults *)
  failed_links : (D.Edge.t, unit) Hashtbl.t;  (* normalized (min, max) *)
  failed_switches : (int, unit) Hashtbl.t;
  mutable fault_events : (int * int * fault_event) list;  (* (at, seq, ev), sorted *)
  mutable fault_seq : int;
  mutable delivered_rev : delivery list;
  mutable drain_rev : delivery list;
  mutable dropped_rev : drop list;
  mutable flit_hops : int;
  mutable link_flits : int Edge_map.t;
  mutable switch_flits : int Vmap.t;
  mutable buffer_flit_cycles : int;
  mutable queued_flits : int;
  mutable contention_events : int;
  mutable retries_total : int;
  mutable faults_applied : int;
  mutable repairs_applied : int;
}

let create ?(config = default_config) ?(policy = Fixed)
    ?(fault_policy = default_fault_policy) arch =
  if config.router_delay < 1 || config.link_delay < 1 then
    invalid_arg "Network.create: delays must be >= 1";
  if config.flit_bits < 1 then invalid_arg "Network.create: flit_bits must be >= 1";
  if fault_policy.max_retries < 0 || fault_policy.backoff_base < 1
     || fault_policy.backoff_cap < fault_policy.backoff_base
  then invalid_arg "Network.create: invalid fault policy";
  let channels = Hashtbl.create 64 in
  let edges = D.edges arch.Noc_core.Synthesis.topology in
  List.iter
    (fun e -> Hashtbl.replace channels e { busy_until = 0; waiting = Queue.create () })
    edges;
  {
    arch;
    cfg = config;
    policy;
    fault_cfg = fault_policy;
    dist_tables = Hashtbl.create 16;
    traces = Hashtbl.create 64;
    cycle = 0;
    next_id = 0;
    in_network = 0;
    channels;
    channel_order = Array.of_list edges;
    arrivals = Hashtbl.create 64;
    live = Hashtbl.create 64;
    live_topology = arch.Noc_core.Synthesis.topology;
    failed_links = Hashtbl.create 8;
    failed_switches = Hashtbl.create 8;
    fault_events = [];
    fault_seq = 0;
    delivered_rev = [];
    drain_rev = [];
    dropped_rev = [];
    flit_hops = 0;
    link_flits = Edge_map.empty;
    switch_flits = Vmap.empty;
    buffer_flit_cycles = 0;
    queued_flits = 0;
    contention_events = 0;
    retries_total = 0;
    faults_applied = 0;
    repairs_applied = 0;
  }

let now t = t.cycle

let config t = t.cfg

let norm_link u v = if u <= v then (u, v) else (v, u)

let link_failed t u v = Hashtbl.mem t.failed_links (norm_link u v)

let switch_failed t s = Hashtbl.mem t.failed_switches s

let failed_links t =
  Hashtbl.fold (fun e () acc -> e :: acc) t.failed_links [] |> List.sort compare

let failed_switches t =
  Hashtbl.fold (fun s () acc -> s :: acc) t.failed_switches [] |> List.sort compare

(* Rebuild the surviving topology from scratch; cheap at NoC sizes and
   makes fail/repair trivially symmetric. *)
let recompute_live t =
  let g =
    Hashtbl.fold
      (fun s () g -> D.remove_vertex g s)
      t.failed_switches t.arch.Noc_core.Synthesis.topology
  in
  let g =
    Hashtbl.fold
      (fun (u, v) () g -> D.remove_edge (D.remove_edge g u v) v u)
      t.failed_links g
  in
  t.live_topology <- g;
  Hashtbl.reset t.dist_tables

let count_switch t node flits =
  t.switch_flits <-
    Vmap.add node (flits + Option.value ~default:0 (Vmap.find_opt node t.switch_flits))
      t.switch_flits

let schedule_arrival t at inf =
  let cell =
    match Hashtbl.find_opt t.arrivals at with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace t.arrivals at l;
        l
  in
  cell := inf :: !cell

let deliver t inf =
  t.in_network <- t.in_network - 1;
  Hashtbl.remove t.live inf.packet.Packet.id;
  Hashtbl.replace t.traces inf.packet.Packet.id (List.rev inf.trace);
  let d = { packet = inf.packet; delivered_at = t.cycle } in
  t.delivered_rev <- d :: t.delivered_rev;
  t.drain_rev <- d :: t.drain_rev

let drop t inf reason =
  t.in_network <- t.in_network - 1;
  Hashtbl.remove t.live inf.packet.Packet.id;
  t.dropped_rev <- { packet = inf.packet; dropped_at = t.cycle; reason } :: t.dropped_rev

(* hop distances to [dst] over the (symmetric) live topology, memoized;
   the memo table is reset whenever the topology changes *)
let distances_to t dst =
  match Hashtbl.find_opt t.dist_tables dst with
  | Some m -> m
  | None ->
      (* BFS from dst following predecessor links = distance-to-dst *)
      let m = Noc_graph.Traversal.bfs_distances (D.reverse t.live_topology) dst in
      Hashtbl.replace t.dist_tables dst m;
      m

(* the next hop under the adaptive/oblivious policies: a surviving neighbor
   strictly closer to the destination, or None when faults cut us off *)
let choose_next t inf =
  let dst = inf.packet.Packet.dst in
  let node = inf.node in
  let dist = distances_to t dst in
  let here = match Vmap.find_opt node dist with Some d -> d | None -> max_int in
  let candidates =
    D.Vset.fold
      (fun n acc ->
        match Vmap.find_opt n dist with
        | Some d when d < here -> n :: acc
        | Some _ | None -> acc)
      (D.succ t.live_topology node) []
    |> List.sort Int.compare
  in
  match (candidates, t.policy) with
  | [], _ -> None
  | _ :: _, Oblivious rng ->
      Some (List.nth candidates (Noc_util.Prng.int rng (List.length candidates)))
  | _ :: _, (Fixed | Adaptive) ->
      (* Adaptive: least backlog; ties by node id (the sort above) *)
      let backlog n =
        match Hashtbl.find_opt t.channels (node, n) with
        | Some ch ->
            let busy = max 0 (ch.busy_until - t.cycle) in
            busy + Queue.fold (fun acc i -> acc + i.packet.Packet.size_flits) 0 ch.waiting
        | None -> max_int
      in
      List.fold_left
        (fun best n ->
          match best with
          | None -> Some n
          | Some b -> if backlog n < backlog b then Some n else best)
        None candidates

(* Are any repairs still scheduled?  If not, a routeless packet is
   permanently undeliverable and retrying is pointless. *)
let has_pending_repairs t =
  List.exists
    (fun (_, _, ev) -> match ev with Repair_link _ | Repair_switch _ -> true | _ -> false)
    t.fault_events

(* Send the packet back to its source NI with bounded exponential backoff;
   the plan is cleared so dispatch replans on the surviving topology. *)
let rec retry_from_source t inf =
  let p = inf.packet in
  if switch_failed t p.Packet.src || switch_failed t p.Packet.dst then
    drop t inf Switch_failed
  else if inf.retries >= t.fault_cfg.max_retries then drop t inf Retries_exhausted
  else begin
    inf.retries <- inf.retries + 1;
    t.retries_total <- t.retries_total + 1;
    let backoff =
      min t.fault_cfg.backoff_cap (t.fault_cfg.backoff_base lsl (inf.retries - 1))
    in
    let backoff = if backoff < 1 then t.fault_cfg.backoff_cap else backoff in
    inf.path <- [||];
    inf.hop <- 0;
    inf.node <- p.Packet.src;
    inf.trace <- [ p.Packet.src ];
    inf.on_link <- None;
    inf.wire_until <- 0;
    count_switch t p.Packet.src p.Packet.size_flits;
    schedule_arrival t (t.cycle + t.cfg.router_delay + backoff) inf
  end

(* A packet is ready at a router: either it is home, or it queues for its
   next channel (planned under Fixed, chosen per hop otherwise).  When the
   planned hop is unusable (failed link/switch) the packet replans with a
   shortest path over the surviving topology; with no surviving path it is
   retried from the source (faults may be transient) or dropped. *)
and route_or_deliver t inf =
  let p = inf.packet in
  if inf.node = p.Packet.dst then deliver t inf
  else if switch_failed t inf.node then
    (* the router holding the packet died before it could move on *)
    retry_from_source t inf
  else begin
    let planned_next () =
      match t.policy with
      | Fixed ->
          if inf.hop + 1 < Array.length inf.path then begin
            let next = inf.path.(inf.hop + 1) in
            if D.mem_edge t.live_topology inf.node next then Some next else None
          end
          else None
      | Adaptive | Oblivious _ -> choose_next t inf
    in
    let next =
      match planned_next () with
      | Some _ as n -> n
      | None -> (
          (* replan over what survives *)
          match Noc_graph.Traversal.shortest_path t.live_topology inf.node p.Packet.dst with
          | Some path ->
              inf.path <- Array.of_list path;
              inf.hop <- 0;
              Some inf.path.(1)
          | None -> None)
    in
    match next with
    | None ->
        if switch_failed t p.Packet.dst then drop t inf Switch_failed
        else if inf.node = p.Packet.src && not (has_pending_repairs t) then
          (* permanently cut off: no surviving path and nothing will heal *)
          drop t inf No_route
        else retry_from_source t inf
    | Some next -> (
        match Hashtbl.find_opt t.channels (inf.node, next) with
        | Some ch ->
            (* the channel is either mid-transmission or already has queued
               packets: this packet will stall at least one cycle *)
            if ch.busy_until > t.cycle || not (Queue.is_empty ch.waiting) then
              t.contention_events <- t.contention_events + 1;
            Queue.add inf ch.waiting;
            t.queued_flits <- t.queued_flits + inf.packet.Packet.size_flits
        | None ->
            invalid_arg
              (Printf.sprintf "Network: route uses missing link %d->%d" inf.node next))
  end

(* -------------------------------------------------------------------- *)
(* Fault application                                                    *)

(* Drain a directed channel's waiting queue.  The packets still sit in the
   upstream router's buffers: with [dead_source] the router itself died and
   they go back to their sources; otherwise they immediately re-request an
   output (replanning around the dead link). *)
let spill_channel t e ~dead_source =
  match Hashtbl.find_opt t.channels e with
  | None -> ()
  | Some ch ->
      let drained = ref [] in
      Queue.iter (fun inf -> drained := inf :: !drained) ch.waiting;
      Queue.clear ch.waiting;
      List.iter
        (fun inf ->
          t.queued_flits <- t.queued_flits - inf.packet.Packet.size_flits;
          if dead_source then retry_from_source t inf else route_or_deliver t inf)
        (List.rev !drained)

(* Remove in-transit packets matching [pred] from the arrival schedule and
   return them sorted by packet id (Hashtbl iteration order is not
   deterministic; the sort restores it). *)
let recall_in_transit t pred =
  let recalled = ref [] in
  Hashtbl.iter
    (fun _at cell ->
      let keep, lost = List.partition (fun inf -> not (pred inf)) !cell in
      if lost <> [] then begin
        cell := keep;
        recalled := lost @ !recalled
      end)
    t.arrivals;
  List.sort (fun a b -> Int.compare a.packet.Packet.id b.packet.Packet.id) !recalled

(* Is the packet physically exposed to the failure of link [e]?  Only while
   its flits are still on the wire ([wire_until] not yet reached); once the
   tail has landed the packet lives in the downstream router's buffer. *)
let on_wire_of t inf (u, v) =
  t.cycle < inf.wire_until
  && (match inf.on_link with
     | Some (a, b) -> (a = u && b = v) || (a = v && b = u)
     | None -> false)

(* Is the packet resident in (or being serialized out of) switch [s]? *)
let at_switch t inf s =
  match inf.on_link with
  | Some (a, b) -> b = s || (a = s && t.cycle < inf.wire_until)
  | None -> inf.node = s

let apply_fault_event t ev =
  match ev with
  | Fail_link (u, v) ->
      let u, v = norm_link u v in
      if not (Hashtbl.mem t.failed_links (u, v)) then begin
        Hashtbl.replace t.failed_links (u, v) ();
        t.faults_applied <- t.faults_applied + 1;
        recompute_live t;
        (* packets queued at either endpoint replan immediately *)
        spill_channel t (u, v) ~dead_source:false;
        spill_channel t (v, u) ~dead_source:false;
        (* packets whose flits are on the dead wire are lost and must be
           retransmitted by their source NI *)
        let lost = recall_in_transit t (fun inf -> on_wire_of t inf (u, v)) in
        List.iter (retry_from_source t) lost
      end
  | Repair_link (u, v) ->
      let u, v = norm_link u v in
      if Hashtbl.mem t.failed_links (u, v) then begin
        Hashtbl.remove t.failed_links (u, v);
        t.repairs_applied <- t.repairs_applied + 1;
        recompute_live t
      end
  | Fail_switch s ->
      if not (Hashtbl.mem t.failed_switches s) then begin
        Hashtbl.replace t.failed_switches s ();
        t.faults_applied <- t.faults_applied + 1;
        recompute_live t;
        (* everything buffered in s is lost; everything queued at a live
           neighbor towards s replans (fixed scan order for determinism) *)
        Array.iter
          (fun (a, b) ->
            if a = s then spill_channel t (a, b) ~dead_source:true
            else if b = s then spill_channel t (a, b) ~dead_source:false)
          t.channel_order;
        let lost = recall_in_transit t (fun inf -> at_switch t inf s) in
        List.iter (retry_from_source t) lost
      end
  | Repair_switch s ->
      if Hashtbl.mem t.failed_switches s then begin
        Hashtbl.remove t.failed_switches s;
        t.repairs_applied <- t.repairs_applied + 1;
        recompute_live t
      end

let schedule_fault_event t ~at ev =
  if at <= t.cycle then apply_fault_event t ev
  else begin
    let seq = t.fault_seq in
    t.fault_seq <- seq + 1;
    t.fault_events <-
      List.sort
        (fun (a, sa, _) (b, sb, _) -> if a <> b then Int.compare a b else Int.compare sa sb)
        ((at, seq, ev) :: t.fault_events)
  end

let check_link_exists t u v =
  if not (D.mem_edge t.arch.Noc_core.Synthesis.topology u v) then
    invalid_arg (Printf.sprintf "Network: no physical link %d-%d" u v)

let check_switch_exists t s =
  if not (D.mem_vertex t.arch.Noc_core.Synthesis.topology s) then
    invalid_arg (Printf.sprintf "Network: no switch %d" s)

let fail_link_at t ~at ?repair_at u v =
  check_link_exists t u v;
  schedule_fault_event t ~at (Fail_link (u, v));
  Option.iter (fun r -> schedule_fault_event t ~at:r (Repair_link (u, v))) repair_at

let fail_switch_at t ~at ?repair_at s =
  check_switch_exists t s;
  schedule_fault_event t ~at (Fail_switch s);
  Option.iter (fun r -> schedule_fault_event t ~at:r (Repair_switch s)) repair_at

let fail_link t u v = fail_link_at t ~at:t.cycle u v

let fail_switch t s = fail_switch_at t ~at:t.cycle s

let repair_link t u v =
  check_link_exists t u v;
  apply_fault_event t (Repair_link (u, v))

let repair_switch t s =
  check_switch_exists t s;
  apply_fault_event t (Repair_switch s)

(* -------------------------------------------------------------------- *)

let inject ?(tag = 0) ?(payload = Bytes.empty) ?(size_flits = 1) t ~src ~dst =
  if size_flits < 1 then invalid_arg "Network.inject: size_flits must be >= 1";
  match Noc_core.Synthesis.route t.arch ~src ~dst with
  | None -> invalid_arg (Printf.sprintf "Network.inject: no route %d->%d" src dst)
  | Some path ->
      let id = t.next_id in
      t.next_id <- id + 1;
      let packet =
        {
          Packet.id;
          src;
          dst;
          size_flits;
          tag;
          payload;
          route = Array.of_list path;
          injected_at = t.cycle;
        }
      in
      t.in_network <- t.in_network + 1;
      let inf =
        {
          packet;
          path = Array.of_list path;
          hop = 0;
          node = src;
          trace = [ src ];
          retries = 0;
          on_link = None;
          wire_until = 0;
        }
      in
      Hashtbl.replace t.live id inf;
      if switch_failed t src || switch_failed t dst then
        (* the NI itself (or its peer) is down: record the loss *)
        drop t inf Switch_failed
      else begin
        count_switch t src size_flits;
        (* source router processing, then contend for the first channel *)
        schedule_arrival t (t.cycle + t.cfg.router_delay) inf
      end;
      id

let step t =
  t.cycle <- t.cycle + 1;
  (* flits sitting in router queues burn retention energy this cycle *)
  t.buffer_flit_cycles <- t.buffer_flit_cycles + t.queued_flits;
  (* 1. fault events due this cycle strike before anything moves *)
  let rec fire () =
    match t.fault_events with
    | (at, _, ev) :: rest when at <= t.cycle ->
        t.fault_events <- rest;
        apply_fault_event t ev;
        fire ()
    | _ -> ()
  in
  fire ();
  (* 2. packets becoming ready at routers this cycle *)
  (match Hashtbl.find_opt t.arrivals t.cycle with
  | Some cell ->
      Hashtbl.remove t.arrivals t.cycle;
      (* restore deterministic order: schedule_arrival prepends *)
      List.iter
        (fun inf ->
          inf.on_link <- None;
          route_or_deliver t inf)
        (List.rev !cell)
  | None -> ());
  (* 3. channel arbitration in fixed scan order; dead channels grant nothing *)
  Array.iter
    (fun e ->
      let u, v = e in
      let ch = Hashtbl.find t.channels e in
      if
        ch.busy_until <= t.cycle
        && (not (Queue.is_empty ch.waiting))
        && D.mem_edge t.live_topology u v
      then begin
        let inf = Queue.pop ch.waiting in
        let flits = inf.packet.Packet.size_flits in
        t.queued_flits <- t.queued_flits - flits;
        ch.busy_until <- t.cycle + flits;
        t.flit_hops <- t.flit_hops + flits;
        t.link_flits <-
          Edge_map.add e
            (flits + Option.value ~default:0 (Edge_map.find_opt e t.link_flits))
            t.link_flits;
        count_switch t v flits;
        inf.hop <- inf.hop + 1;
        inf.node <- v;
        inf.trace <- v :: inf.trace;
        inf.on_link <- Some e;
        let tail_arrives = t.cycle + t.cfg.link_delay + flits - 1 in
        inf.wire_until <- tail_arrives;
        schedule_arrival t (tail_arrives + t.cfg.router_delay) inf
      end)
    t.channel_order

let pending t = t.in_network

let stranded t =
  Hashtbl.fold (fun _ inf acc -> inf.packet :: acc) t.live []
  |> List.sort (fun a b -> Int.compare a.Packet.id b.Packet.id)

let run_until_idle ?(max_cycles = 1_000_000) t =
  let start = t.cycle in
  let rec go () =
    if t.in_network = 0 then `Idle
    else if t.cycle - start >= max_cycles then `Limit t.in_network
    else begin
      step t;
      go ()
    end
  in
  go ()

let deliveries t = List.rev t.delivered_rev

let drain_deliveries t =
  let ds = List.rev t.drain_rev in
  t.drain_rev <- [];
  ds

let drops t = List.rev t.dropped_rev

let dropped_count t = List.length t.dropped_rev

let retries t = t.retries_total

let arch t = t.arch

let live_topology t = t.live_topology

let route_taken t id = Hashtbl.find_opt t.traces id

let buffer_flit_cycles t = t.buffer_flit_cycles

let flit_hops t = t.flit_hops

let link_flits t = t.link_flits

let switch_flits t = t.switch_flits

let contention_events t = t.contention_events

let delivered_count t = List.length t.delivered_rev

let metrics t =
  let base =
    [
      ("cycles", float_of_int t.cycle);
      ("injected", float_of_int t.next_id);
      ("delivered", float_of_int (delivered_count t));
      ("dropped", float_of_int (dropped_count t));
      ("in_network", float_of_int t.in_network);
      ("flit_hops", float_of_int t.flit_hops);
      ("buffer_flit_cycles", float_of_int t.buffer_flit_cycles);
      ("queued_flits", float_of_int t.queued_flits);
      ("contention_events", float_of_int t.contention_events);
      ("retries", float_of_int t.retries_total);
      ("faults_applied", float_of_int t.faults_applied);
      ("repairs_applied", float_of_int t.repairs_applied);
      ("failed_links", float_of_int (Hashtbl.length t.failed_links));
      ("failed_switches", float_of_int (Hashtbl.length t.failed_switches));
    ]
  in
  let routers =
    Vmap.fold
      (fun v n acc -> (Printf.sprintf "router.%d.flits" v, float_of_int n) :: acc)
      t.switch_flits []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let links =
    Edge_map.fold
      (fun (u, v) n acc ->
        (Printf.sprintf "link.%d-%d.flits" u v, float_of_int n) :: acc)
      t.link_flits []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  base @ routers @ links
