(** Offered-load sweeps: the classic latency-vs-load characterization.

    For each injection rate, the network is warmed up and measured under
    Bernoulli traffic on a fixed flow set; the resulting curve shows the
    zero-load latency plateau and the saturation knee, which is where a
    customized architecture and a mesh separate most visibly. *)

type point = {
  rate : float;  (** offered injection rate per flow (packets/cycle) *)
  offered : float;  (** total offered load (packets/cycle, all flows) *)
  delivered : int;
  avg_latency : float;
  throughput : float;  (** delivered flits per cycle over the makespan *)
}

val latency_vs_load :
  ?engine:Engine.kind ->
  rng:Noc_util.Prng.t ->
  arch:Noc_core.Synthesis.t ->
  acg:Noc_core.Acg.t ->
  ?size_flits:int ->
  ?cycles:int ->
  rates:float list ->
  unit ->
  point list
(** One fresh network per rate; flows are the ACG's edges with equal rates
    ([Traffic.flows_of_acg] scaling is bypassed — the sweep sets the rate
    directly).  [cycles] (default 2000) of injection, then a bounded drain.
    Deterministic: the PRNG is split per rate.  [engine] (default
    {!Engine.Coarse} for speed) picks the simulation fidelity; a
    saturated high-fidelity run that deadlocks or hits the drain bound
    simply reports the packets it delivered, which is the regime the knee
    detector looks for anyway. *)

val saturation_rate : point list -> float option
(** First rate at which average latency exceeds 4x the baseline latency — a
    simple knee estimate.  The baseline is the first point that actually
    delivered packets (a leading zero-delivery point reports
    [avg_latency = 0.] and must not fabricate a baseline); [None] if no
    point delivered or the curve never saturates. *)

val to_series : point list -> (float * float) list
(** (offered load, average latency) pairs for plotting. *)
