module Timer = Noc_util.Timer

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let float_str f =
    if not (Float.is_finite f) then "null"
    else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else
      (* shortest-of-two round-trip: 12 significant digits read nicely and
         suffice for almost every value; fall back to 17 (always exact for
         binary64) when they don't re-parse to the same float, so record
         diffs compare bit-identical metrics *)
      let s = Printf.sprintf "%.12g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_str f)
    | Str s -> escape buf s
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            emit buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            escape buf k;
            Buffer.add_char buf ':';
            emit buf v)
          kvs;
        Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    emit buf t;
    Buffer.contents buf

  let pp ppf t = Format.pp_print_string ppf (to_string t)

  (* A minimal JSON reader: enough to round-trip everything the emitter above
     produces (traces, metrics, bench records), so tools like the benchmark
     regression gate need no external JSON dependency. *)

  exception Parse_failure of string

  let parse_exn (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail m = raise (Parse_failure (Printf.sprintf "%s at offset %d" m !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
            | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
            | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
            | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
            | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
            | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
            | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
            | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
            | Some 'u' ->
                advance ();
                if !pos + 4 > n then fail "bad \\u escape";
                let hex = String.sub s !pos 4 in
                (match int_of_string_opt ("0x" ^ hex) with
                | None -> fail "bad \\u escape"
                | Some code ->
                    pos := !pos + 4;
                    (* the emitter only escapes ASCII control characters *)
                    if code < 0x80 then Buffer.add_char buf (Char.chr code)
                    else fail "non-ASCII \\u escape unsupported");
                go ()
            | _ -> fail "bad escape")
        | Some c ->
            Buffer.add_char buf c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c when is_num_char c -> true | _ -> false) do
        advance ()
      done;
      let text = String.sub s start (!pos - start) in
      if text = "" then fail "expected a value"
      else if
        String.contains text '.' || String.contains text 'e' || String.contains text 'E'
      then
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number"
      else
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> (
            match float_of_string_opt text with
            | Some f -> Float f
            | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (members [])
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else begin
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            List (elements [])
          end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
      | None -> fail "empty input"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let parse s =
    match parse_exn s with
    | v -> Ok v
    | exception Parse_failure m -> Error (`Msg m)

  let member name = function Obj kvs -> List.assoc_opt name kvs | _ -> None

  let to_float = function
    | Int i -> Some (float_of_int i)
    | Float f -> Some f
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                 *)

module Counter = struct
  type t = { name : string; cell : int Atomic.t }

  let make name = { name; cell = Atomic.make 0 }
  let name c = c.name
  let incr c = Atomic.incr c.cell
  let add c n = ignore (Atomic.fetch_and_add c.cell n)
  let get c = Atomic.get c.cell
end

module Gauge = struct
  type t = { name : string; cell : float Atomic.t }

  let make name = { name; cell = Atomic.make 0.0 }
  let name g = g.name
  let set g v = Atomic.set g.cell v
  let get g = Atomic.get g.cell
end

(* ------------------------------------------------------------------ *)
(* Observer                                                            *)

type event = {
  ph : char;  (* 'X' complete, 'i' instant, 'C' counter sample *)
  ev_name : string;
  cat : string;
  ts_us : float;
  dur_us : float;  (* meaningful for 'X' only *)
  tid : int;
  eargs : (string * Json.t) list;
}

type t = {
  on : bool;
  t0 : float;  (* monotonic epoch, seconds *)
  lock : Mutex.t;
  counters : (string, Counter.t) Hashtbl.t;
  gauges : (string, Gauge.t) Hashtbl.t;
  mutable events_rev : event list;
  mutable n_events : int;
}

let mk on =
  {
    on;
    t0 = (if on then Timer.now_mono_s () else 0.0);
    lock = Mutex.create ();
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    events_rev = [];
    n_events = 0;
  }

let disabled = mk false
let create () = mk true
let enabled t = t.on
let elapsed_s t = if t.on then Timer.now_mono_s () -. t.t0 else 0.0
let now_us t = (Timer.now_mono_s () -. t.t0) *. 1e6

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let counter t name =
  if not t.on then Counter.make name
  else
    locked t (fun () ->
        match Hashtbl.find_opt t.counters name with
        | Some c -> c
        | None ->
            let c = Counter.make name in
            Hashtbl.replace t.counters name c;
            c)

let gauge t name =
  if not t.on then Gauge.make name
  else
    locked t (fun () ->
        match Hashtbl.find_opt t.gauges name with
        | Some g -> g
        | None ->
            let g = Gauge.make name in
            Hashtbl.replace t.gauges name g;
            g)

let self_tid () = (Domain.self () :> int)

let record t ev =
  locked t (fun () ->
      t.events_rev <- ev :: t.events_rev;
      t.n_events <- t.n_events + 1)

let span t ?(cat = "") ?(args = []) name f =
  if not t.on then f ()
  else begin
    let ts = now_us t in
    let tid = self_tid () in
    Fun.protect
      ~finally:(fun () ->
        record t
          { ph = 'X'; ev_name = name; cat; ts_us = ts; dur_us = now_us t -. ts; tid;
            eargs = args })
      f
  end

let instant t ?(args = []) name =
  if t.on then
    record t
      { ph = 'i'; ev_name = name; cat = ""; ts_us = now_us t; dur_us = 0.0;
        tid = self_tid (); eargs = args }

let sample t name v =
  if t.on then
    record t
      { ph = 'C'; ev_name = name; cat = ""; ts_us = now_us t; dur_us = 0.0;
        tid = self_tid (); eargs = [ ("value", Json.Float v) ] }

let sorted_counters t =
  Hashtbl.fold (fun _ c acc -> c :: acc) t.counters []
  |> List.sort (fun a b -> String.compare (Counter.name a) (Counter.name b))

let sorted_gauges t =
  Hashtbl.fold (fun _ g acc -> g :: acc) t.gauges []
  |> List.sort (fun a b -> String.compare (Gauge.name a) (Gauge.name b))

let metrics t =
  if not t.on then []
  else
    locked t (fun () ->
        List.map (fun c -> (Counter.name c, Json.Int (Counter.get c))) (sorted_counters t)
        @ List.map (fun g -> (Gauge.name g, Json.Float (Gauge.get g))) (sorted_gauges t))

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)

module Trace = struct
  let event_json e =
    let base =
      [
        ("name", Json.Str e.ev_name);
        ("cat", Json.Str (if e.cat = "" then "app" else e.cat));
        ("ph", Json.Str (String.make 1 e.ph));
        ("ts", Json.Float e.ts_us);
        ("pid", Json.Int 0);
        ("tid", Json.Int e.tid);
      ]
    in
    let base = if e.ph = 'X' then base @ [ ("dur", Json.Float e.dur_us) ] else base in
    let base = if e.ph = 'i' then base @ [ ("s", Json.Str "g") ] else base in
    let base = if e.eargs = [] then base else base @ [ ("args", Json.Obj e.eargs) ] in
    Json.Obj base

  let to_json t =
    if not t.on then Json.Obj [ ("traceEvents", Json.List []) ]
    else
      locked t (fun () ->
          let ts = now_us t in
          let tid = self_tid () in
          (* final value of every scalar, so counters show in the viewer *)
          let finals =
            List.map
              (fun c ->
                { ph = 'C'; ev_name = Counter.name c; cat = ""; ts_us = ts; dur_us = 0.0;
                  tid; eargs = [ ("value", Json.Float (float_of_int (Counter.get c))) ] })
              (sorted_counters t)
            @ List.map
                (fun g ->
                  { ph = 'C'; ev_name = Gauge.name g; cat = ""; ts_us = ts; dur_us = 0.0;
                    tid; eargs = [ ("value", Json.Float (Gauge.get g)) ] })
                (sorted_gauges t)
          in
          let events = List.rev_append t.events_rev finals in
          Json.Obj
            [
              ("traceEvents", Json.List (List.map event_json events));
              ("displayTimeUnit", Json.Str "ms");
            ])

  let to_string t = Json.to_string (to_json t)

  let write t ~path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_string t))
end

module Progress = struct
  let pp_summary ppf t =
    if not t.on then Format.fprintf ppf "observability disabled@."
    else begin
      let counters, gauges, n_events =
        locked t (fun () -> (sorted_counters t, sorted_gauges t, t.n_events))
      in
      Format.fprintf ppf "observed %.3f s, %d trace event(s)@." (elapsed_s t) n_events;
      List.iter
        (fun c -> Format.fprintf ppf "  %-32s %d@." (Counter.name c) (Counter.get c))
        counters;
      List.iter
        (fun g -> Format.fprintf ppf "  %-32s %g@." (Gauge.name g) (Gauge.get g))
        gauges
    end
end
