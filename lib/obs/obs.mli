(** Observability: spans, counters and gauges for the search and the
    simulator, with two sinks — a human summary renderer and a Chrome
    [trace_event] JSON exporter loadable in [about://tracing] / Perfetto.

    Design constraints, in order:

    - {b off by default, free when disabled}: {!disabled} is a shared no-op
      observer; every operation on it reduces to a field test and the
      instrumented engines produce bit-identical results with it (the
      differential tests in [test/suite_obs.ml] assert this);
    - {b domain-safe}: counters and gauges are single atomics, so the
      parallel branch-and-bound workers bump them without locks; the event
      buffer takes a mutex only on the (rare) span/instant boundaries;
    - {b dependency-free}: only the stdlib and the monotonic clock already
      wrapped by {!Noc_util.Timer}. *)

(** Minimal JSON values, used for trace/metrics emission (this repository
    deliberately has no JSON dependency). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float  (** non-finite floats render as [null] *)
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact rendering with full string escaping; always valid JSON. *)

  val pp : Format.formatter -> t -> unit

  val parse : string -> (t, [ `Msg of string ]) result
  (** [parse s] reads one JSON value (the whole string; trailing garbage is
      an error).  Round-trips everything {!to_string} emits — numbers
      without a fractional part or exponent come back as [Int], others as
      [Float].  Only ASCII [\u....] escapes are supported, which covers the
      emitter's output. *)

  val member : string -> t -> t option
  (** [member key json] is the value bound to [key] when [json] is an
      [Obj]; [None] otherwise. *)

  val to_float : t -> float option
  (** Numeric view of an [Int] or [Float] node. *)
end

(** Monotonically increasing integer counters (a single [Atomic.t]). *)
module Counter : sig
  type t

  val make : string -> t
  (** A free-standing counter, not attached to any observer (what
      {!val-counter} returns for {!disabled}). *)

  val name : t -> string
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
end

(** Last-write-wins float gauges. *)
module Gauge : sig
  type t

  val make : string -> t
  val name : t -> string
  val set : t -> float -> unit
  val get : t -> float
end

type t
(** An observer: a registry of counters and gauges plus a buffer of timed
    trace events, all sharing one monotonic epoch. *)

val disabled : t
(** The shared no-op observer: {!enabled} is [false], spans run their body
    directly, counters handed out are dummies, sinks render nothing. *)

val create : unit -> t
(** A live observer; its epoch (trace timestamp 0) is the moment of
    creation. *)

val enabled : t -> bool

val elapsed_s : t -> float
(** Seconds since the observer's epoch ([0.] when disabled). *)

val counter : t -> string -> Counter.t
(** The observer's counter registered under [name], created on first
    request (subsequent requests return the same counter).  On {!disabled}
    this returns a fresh unregistered dummy — callers on hot paths should
    gate with {!enabled} and keep local accumulators instead. *)

val gauge : t -> string -> Gauge.t

val span : t -> ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f ()]; when enabled, records a complete
    ([ph = "X"]) trace event covering its duration, tagged with the calling
    domain's id, even if [f] raises.  When disabled this is exactly
    [f ()]. *)

val instant : t -> ?args:(string * Json.t) list -> string -> unit
(** A point-in-time ([ph = "i"]) event — e.g. one incumbent update. *)

val sample : t -> string -> float -> unit
(** A Chrome counter ([ph = "C"]) event: the timeline of [name] over the
    run. *)

val metrics : t -> (string * Json.t) list
(** All registered counters (as [Int]) and gauges (as [Float]), sorted by
    name; [[]] when disabled. *)

(** Chrome [trace_event] sink. *)
module Trace : sig
  val to_json : t -> Json.t
  (** [{"traceEvents": [...], "displayTimeUnit": "ms"}].  Every buffered
      event appears in order; one final counter sample per registered
      counter and gauge is appended so scalar metrics are visible in the
      viewer.  Timestamps are microseconds since the observer's epoch. *)

  val to_string : t -> string

  val write : t -> path:string -> unit
end

(** Human sink: a compact summary of everything observed. *)
module Progress : sig
  val pp_summary : Format.formatter -> t -> unit
  (** Elapsed time, event count, then one [name = value] line per counter
      and gauge (sorted).  Renders a single line for {!disabled}. *)
end
