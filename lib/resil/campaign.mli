(** Resilience campaigns: sweep fault sets over a scenario and measure how
    gracefully the synthesized architecture degrades.

    Each run injects one burst of traffic (one packet per ACG flow) into a
    fresh network, strikes the fault set mid-flight, and runs to idle; the
    fault-aware simulator guarantees every packet ends up delivered or
    dropped, so a run is characterized by its delivered fraction, latency
    degradation versus the fault-free baseline, and the statically
    disconnected flow pairs ({!Reroute}).  The single-link sweep is
    exhaustive and doubles as a per-link criticality analysis; multi-link
    sweeps are sampled with a seeded PRNG.  Metrics flow through
    {!Noc_obs.Obs} ([resil.*] counters, per-scenario gauges). *)

type spec =
  | Single_link  (** exhaustive: one run per physical link *)
  | Multi_link of { links : int; samples : int }
      (** sampled: [samples] runs of [links] simultaneous failures *)

type run_result = {
  faults : Fault.t list;
  injected : int;
  delivered : int;
  dropped : int;
  stranded : int;  (** packets never classified — 0 unless the run hit its cycle limit *)
  delivered_fraction : float;  (** delivered / injected; 1.0 for an empty burst *)
  avg_latency : float;  (** over delivered packets, cycles *)
  latency_factor : float;  (** avg_latency / fault-free avg_latency *)
  disconnected_pairs : int;  (** flows statically disconnected by the faults *)
  retries : int;  (** source-NI retransmissions the run needed *)
  cycles : int;  (** makespan of the run *)
  engine_delivered : int;
      (** packets the validation engine delivered over the degraded
          architecture; 0 when validation is off *)
  engine_ok : bool;
      (** the validation engine drained every surviving flow of the
          degraded architecture cleanly (idle verdict, full delivery,
          conservation for the flit engine); vacuously [true] when
          validation is off *)
}

type link_criticality = {
  link : int * int;
  delivered_fraction : float;
  latency_factor : float;
  disconnected_pairs : int;
}

type report = {
  scenario : string;
  baseline : run_result;  (** the fault-free run ([faults = []]) *)
  runs : run_result list;  (** one per fault set, in campaign order *)
  criticality : link_criticality list;
      (** single-link campaigns only: per-link impact, worst link first
          (by lost traffic, then latency, then link id) *)
  min_delivered_fraction : float;  (** worst run; 1.0 when there are no runs *)
  max_latency_factor : float;
  worst_disconnected_pairs : int;
  critical_links : int;
      (** runs that lost traffic or disconnected a pair — under
          [Single_link] exactly the number of critical links *)
  survives_all : bool;
      (** every run delivered every packet (fraction 1.0, nothing
          stranded) *)
  stranded_total : int;  (** must be 0: packets the subsystem failed to classify *)
  engine_validated : bool;
      (** every run (baseline included) passed the validation engine's
          degraded-mode check; vacuously [true] when validation is off *)
}

val run :
  ?observe:Noc_obs.Obs.t ->
  ?config:Noc_sim.Network.config ->
  ?fault_policy:Noc_sim.Network.fault_policy ->
  ?validate_engine:Noc_sim.Engine.kind ->
  ?size_flits:int ->
  ?max_cycles:int ->
  name:string ->
  seed:int ->
  spec:spec ->
  Noc_core.Acg.t ->
  Noc_core.Synthesis.t ->
  report
(** Run the campaign for one scenario.  [seed] drives multi-link sampling
    (single-link sweeps are deterministic anyway); [size_flits] is the
    burst packet size (default 2); [max_cycles] bounds each run (default
    200_000).  Deterministic: identical arguments give identical reports.

    [validate_engine] additionally pushes each fault set's {e degraded}
    architecture ({!Reroute.apply}) through the named engine: the
    surviving flows get one packet each and the fabric must drain
    cleanly.  With {!Noc_sim.Engine.Flit} this catches reroute-induced
    deadlocks and buffer pathologies the per-hop coarse model cannot
    express ({!field-engine_ok} / {!field-engine_validated}). *)

val pp_report : Format.formatter -> report -> unit
(** One-line human summary (scenario, runs, worst numbers, verdict). *)
