module D = Noc_graph.Digraph
module Net = Noc_sim.Network
module Obs = Noc_obs.Obs

type spec = Single_link | Multi_link of { links : int; samples : int }

type run_result = {
  faults : Fault.t list;
  injected : int;
  delivered : int;
  dropped : int;
  stranded : int;
  delivered_fraction : float;
  avg_latency : float;
  latency_factor : float;
  disconnected_pairs : int;
  retries : int;
  cycles : int;
  engine_delivered : int;
  engine_ok : bool;
}

type link_criticality = {
  link : int * int;
  delivered_fraction : float;
  latency_factor : float;
  disconnected_pairs : int;
}

type report = {
  scenario : string;
  baseline : run_result;
  runs : run_result list;
  criticality : link_criticality list;
  min_delivered_fraction : float;
  max_latency_factor : float;
  worst_disconnected_pairs : int;
  critical_links : int;
  survives_all : bool;
  stranded_total : int;
  engine_validated : bool;
}

(* Cross-check a degraded mode on a second engine: rebuild the routing
   tables over the surviving topology (exactly what the coarse engine's
   replanning does internally), then drive the surviving flows through the
   chosen fidelity and require a clean drain.  A flit-level [engine_ok]
   certifies that the degraded tables not only exist but actually flow
   through VOQ routers with finite buffers — reroute-induced deadlocks
   show up here, not in the per-hop coarse model. *)
let validate_degraded ~engine ~size_flits ~max_cycles arch faults =
  let out = Reroute.apply arch ~faults in
  let net = Noc_sim.Engine.create engine out.Reroute.arch in
  let flows = out.Reroute.kept @ out.Reroute.rerouted in
  List.iter
    (fun (src, dst) -> ignore (Noc_sim.Engine.inject ~size_flits net ~src ~dst))
    flows;
  let verdict = Noc_sim.Engine.run_until_idle ~max_cycles net in
  let delivered = List.length (Noc_sim.Engine.deliveries net) in
  let conserved =
    match Noc_sim.Engine.flitsim net with
    | Some f -> Noc_sim.Flitsim.conservation_ok f
    | None -> true
  in
  (delivered, verdict = Noc_sim.Engine.Idle && delivered = List.length flows && conserved)

let run_one ?config ?fault_policy ?validate_engine ~size_flits ~max_cycles acg arch faults =
  let net = Net.create ?config ?fault_policy arch in
  List.iter (Fault.inject_into net) faults;
  D.iter_edges
    (fun src dst -> ignore (Net.inject ~size_flits net ~src ~dst))
    (Noc_core.Acg.graph acg);
  let injected = Net.pending net + Net.dropped_count net in
  let stranded = match Net.run_until_idle ~max_cycles net with `Idle -> 0 | `Limit n -> n in
  let delivered = Net.delivered_count net in
  let dropped = Net.dropped_count net in
  let summary = Noc_sim.Stats.summarize (Net.deliveries net) in
  let disconnected_pairs =
    if faults = [] then 0
    else List.length (Reroute.apply arch ~faults).Reroute.disconnected
  in
  let engine_delivered, engine_ok =
    match validate_engine with
    | None -> (0, true)
    | Some engine -> validate_degraded ~engine ~size_flits ~max_cycles arch faults
  in
  {
    faults;
    injected;
    delivered;
    dropped;
    stranded;
    delivered_fraction =
      (if injected = 0 then 1.0 else float_of_int delivered /. float_of_int injected);
    avg_latency = summary.Noc_sim.Stats.avg_latency;
    latency_factor = 1.0 (* filled in against the baseline below *);
    disconnected_pairs;
    retries = Net.retries net;
    cycles = Net.now net;
    engine_delivered;
    engine_ok;
  }

let fault_sets ~seed ~spec arch =
  match spec with
  | Single_link -> Fault.single_link_campaign arch
  | Multi_link { links; samples } ->
      let rng = Noc_util.Prng.create ~seed in
      Fault.multi_link_campaign ~rng ~links ~samples arch

let run ?(observe = Obs.disabled) ?config ?fault_policy ?validate_engine ?(size_flits = 2)
    ?(max_cycles = 200_000) ~name ~seed ~spec acg arch =
  Obs.span observe ~cat:"resil" ("resil." ^ name) @@ fun () ->
  let run_one = run_one ?config ?fault_policy ?validate_engine ~size_flits ~max_cycles acg arch in
  let baseline = run_one [] in
  let relative r =
    if r.avg_latency > 0.0 && baseline.avg_latency > 0.0 then
      { r with latency_factor = r.avg_latency /. baseline.avg_latency }
    else r
  in
  let runs = List.map (fun fs -> relative (run_one fs)) (fault_sets ~seed ~spec arch) in
  let criticality =
    match spec with
    | Multi_link _ -> []
    | Single_link ->
        List.filter_map
          (fun r ->
            match r.faults with
            | [ { Fault.target = Fault.Link (u, v); _ } ] ->
                Some
                  {
                    link = (u, v);
                    delivered_fraction = r.delivered_fraction;
                    latency_factor = r.latency_factor;
                    disconnected_pairs = r.disconnected_pairs;
                  }
            | _ -> None)
          runs
        |> List.sort (fun a b ->
               compare
                 (a.delivered_fraction, -.a.latency_factor, -a.disconnected_pairs, a.link)
                 (b.delivered_fraction, -.b.latency_factor, -b.disconnected_pairs, b.link))
  in
  let fold f init (proj : run_result -> _) =
    List.fold_left (fun acc r -> f acc (proj r)) init runs
  in
  let min_df = fold min 1.0 (fun r -> r.delivered_fraction) in
  let max_lf = fold max 1.0 (fun r -> r.latency_factor) in
  let worst_disc = fold max 0 (fun r -> r.disconnected_pairs) in
  let critical =
    List.length
      (List.filter
         (fun (r : run_result) -> r.delivered_fraction < 1.0 || r.disconnected_pairs > 0)
         runs)
  in
  let stranded_total = fold ( + ) baseline.stranded (fun r -> r.stranded) in
  let survives_all =
    List.for_all (fun (r : run_result) -> r.delivered_fraction >= 1.0 && r.stranded = 0) runs
  in
  let engine_validated =
    baseline.engine_ok && List.for_all (fun (r : run_result) -> r.engine_ok) runs
  in
  if Obs.enabled observe then begin
    Obs.Counter.add (Obs.counter observe "resil.runs") (List.length runs);
    Obs.Counter.add (Obs.counter observe "resil.dropped") (fold ( + ) 0 (fun r -> r.dropped));
    Obs.Counter.add (Obs.counter observe "resil.retries") (fold ( + ) 0 (fun r -> r.retries));
    Obs.Counter.add (Obs.counter observe "resil.stranded") stranded_total;
    Obs.Gauge.set
      (Obs.gauge observe (Printf.sprintf "resil.%s.min_delivered_fraction" name))
      min_df;
    Obs.Gauge.set
      (Obs.gauge observe (Printf.sprintf "resil.%s.max_latency_factor" name))
      max_lf
  end;
  {
    scenario = name;
    baseline;
    runs;
    criticality;
    min_delivered_fraction = min_df;
    max_latency_factor = max_lf;
    worst_disconnected_pairs = worst_disc;
    critical_links = critical;
    survives_all;
    stranded_total;
    engine_validated;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "%s: %d fault sets, min delivered %.3f, max latency x%.2f, worst disconnected %d, \
     %d critical, %s%s"
    r.scenario (List.length r.runs) r.min_delivered_fraction r.max_latency_factor
    r.worst_disconnected_pairs r.critical_links
    (if r.survives_all then "survives all" else "degrades")
    (if r.stranded_total > 0 then Printf.sprintf " (%d STRANDED)" r.stranded_total else "")
