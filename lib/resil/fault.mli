(** The fault model: what can break, when, and for how long.

    A fault targets one physical resource of a synthesized architecture —
    an (undirected) link or a switch — and strikes at a given simulation
    cycle, either permanently or transiently (self-repairing after a fixed
    number of cycles).  Campaign generators build deterministic fault sets
    from an architecture: exhaustive over single links, or seeded random
    samples of simultaneous multi-link failures (reusing
    {!Noc_util.Prng}). *)

type target =
  | Link of int * int  (** normalized: first endpoint <= second *)
  | Switch of int

type duration =
  | Permanent
  | Transient of int  (** cycles until the resource self-repairs *)

type t = { target : target; at : int; duration : duration }

val link : ?at:int -> ?duration:duration -> int -> int -> t
(** [link u v] is a fault taking the undirected link [u-v] down.
    [at] defaults to cycle 1 (just after a burst injection at cycle 0, so
    traffic is exercised mid-flight); [duration] defaults to
    [Permanent]. *)

val switch : ?at:int -> ?duration:duration -> int -> t

val targets : t list -> target list

val pp : Format.formatter -> t -> unit

val undirected_links : Noc_core.Synthesis.t -> (int * int) list
(** The architecture's physical links, normalized [(min, max)], sorted. *)

val single_link_campaign : ?at:int -> Noc_core.Synthesis.t -> t list list
(** One singleton fault set per physical link — the exhaustive single-link
    sweep, in link order. *)

val multi_link_campaign :
  ?at:int -> rng:Noc_util.Prng.t -> links:int -> samples:int -> Noc_core.Synthesis.t -> t list list
(** [samples] fault sets of [links] simultaneous distinct link failures
    each, sampled with [rng] (deterministic for a given seed).  [links] is
    clamped to the number of physical links. *)

val inject_into : Noc_sim.Network.t -> t -> unit
(** Translate the fault into the network's scheduled fail/repair events. *)
