(** Graceful degradation of routing tables: given an architecture and a
    set of faults, rebuild the routing tables over the surviving topology.

    Routes untouched by the faults are kept verbatim (schedule-derived
    optimality is preserved); routes crossing a failed link or switch fall
    back to a shortest path over the surviving links; flows whose
    endpoints can no longer reach each other are reported as disconnected
    and dropped from the table.  The degraded architecture is re-analyzed
    for deadlock — a rerouted table can introduce channel-dependency
    cycles the original schedule-derived table avoided, and callers
    deciding whether a degraded mode is safe to run need that verdict. *)

type outcome = {
  arch : Noc_core.Synthesis.t;
      (** the degraded architecture: surviving topology, patched routes
          (disconnected flows removed) *)
  kept : (int * int) list;  (** flows whose original route survives *)
  rerouted : (int * int) list;  (** flows moved to a shortest-path fallback *)
  disconnected : (int * int) list;
      (** flows with no surviving path (including dead endpoints) *)
  deadlock : Noc_core.Deadlock.report;
      (** Dally & Seitz analysis of the degraded routing tables *)
}

val surviving_topology :
  Noc_core.Synthesis.t -> faults:Fault.t list -> Noc_graph.Digraph.t
(** The physical topology minus failed links (both directions) and failed
    switches (with all their links); fault timing is ignored. *)

val apply : Noc_core.Synthesis.t -> faults:Fault.t list -> outcome
(** Degrade [arch] under the faults' targets.  All three flow lists are
    sorted and partition the original flow set. *)
