module D = Noc_graph.Digraph
module Edge_map = D.Edge_map
module Syn = Noc_core.Synthesis

let surviving_topology arch ~faults =
  List.fold_left
    (fun g f ->
      match f.Fault.target with
      | Fault.Link (u, v) -> D.remove_edge (D.remove_edge g u v) v u
      | Fault.Switch s -> D.remove_vertex g s)
    arch.Syn.topology faults

let path_survives g path =
  let rec ok = function
    | a :: (b :: _ as rest) -> D.mem_edge g a b && ok rest
    | [ _ ] | [] -> true
  in
  ok path

type outcome = {
  arch : Syn.t;
  kept : (int * int) list;
  rerouted : (int * int) list;
  disconnected : (int * int) list;
  deadlock : Noc_core.Deadlock.report;
}

let apply arch ~faults =
  let g = surviving_topology arch ~faults in
  let routes, kept, rerouted, disconnected =
    Edge_map.fold
      (fun (s, d) path (routes, kept, rer, disc) ->
        if not (D.mem_vertex g s && D.mem_vertex g d) then
          (routes, kept, rer, (s, d) :: disc)
        else if path_survives g path then
          (Edge_map.add (s, d) path routes, (s, d) :: kept, rer, disc)
        else
          match Noc_graph.Traversal.shortest_path g s d with
          | Some path' -> (Edge_map.add (s, d) path' routes, kept, (s, d) :: rer, disc)
          | None -> (routes, kept, rer, (s, d) :: disc))
      arch.Syn.routes
      (Edge_map.empty, [], [], [])
  in
  let arch' = Syn.make ~topology:g ~routes () in
  {
    arch = arch';
    kept = List.sort compare kept;
    rerouted = List.sort compare rerouted;
    disconnected = List.sort compare disconnected;
    deadlock = Noc_core.Deadlock.analyze arch';
  }
