module D = Noc_graph.Digraph

type target = Link of int * int | Switch of int

type duration = Permanent | Transient of int

type t = { target : target; at : int; duration : duration }

let norm u v = if u <= v then (u, v) else (v, u)

let link ?(at = 1) ?(duration = Permanent) u v =
  let u, v = norm u v in
  { target = Link (u, v); at; duration }

let switch ?(at = 1) ?(duration = Permanent) s = { target = Switch s; at; duration }

let targets fs = List.map (fun f -> f.target) fs

let pp ppf f =
  let pp_target ppf = function
    | Link (u, v) -> Format.fprintf ppf "link %d-%d" u v
    | Switch s -> Format.fprintf ppf "switch %d" s
  in
  match f.duration with
  | Permanent -> Format.fprintf ppf "%a down at cycle %d" pp_target f.target f.at
  | Transient d ->
      Format.fprintf ppf "%a down at cycle %d for %d cycles" pp_target f.target f.at d

let undirected_links arch =
  D.fold_edges
    (fun u v acc -> if u < v then (u, v) :: acc else acc)
    arch.Noc_core.Synthesis.topology []
  |> List.sort compare

let single_link_campaign ?at arch =
  List.map (fun (u, v) -> [ link ?at u v ]) (undirected_links arch)

let multi_link_campaign ?at ~rng ~links ~samples arch =
  let all = undirected_links arch in
  let k = min links (List.length all) in
  if k = 0 || samples <= 0 then []
  else
    List.init samples (fun _ ->
        Noc_util.Prng.sample rng k all |> List.sort compare
        |> List.map (fun (u, v) -> link ?at u v))

let inject_into net f =
  let repair_at = match f.duration with Permanent -> None | Transient d -> Some (f.at + d) in
  match f.target with
  | Link (u, v) -> Noc_sim.Network.fail_link_at net ~at:f.at ?repair_at u v
  | Switch s -> Noc_sim.Network.fail_switch_at net ~at:f.at ?repair_at s
