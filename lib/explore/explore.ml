module D = Noc_graph.Digraph
module Acg = Noc_core.Acg
module Mapping = Noc_core.Mapping
module Syn = Noc_core.Synthesis
module Bb = Noc_core.Branch_bound
module L = Noc_primitives.Library
module P = Noc_primitives.Primitive
module Prng = Noc_util.Prng
module Obs = Noc_obs.Obs
module Json = Obs.Json

type axes = {
  mappings : Mapping.t array;
  subsets : (string * L.t) array;
  bw_scales : float array;
}

let default_bw_scales = [| 0.5; 1.0; 2.0 |]

(* n! saturated at [cap + 1]: only the comparison against the cap matters *)
let factorial_capped ~cap n =
  let rec go acc i = if i > n then acc else if acc > cap then acc else go (acc * i) (i + 1) in
  go 1 2

let is_saver (e : L.entry) = P.impl_link_count e.prim < P.repr_edge_count e.prim

let popcount m =
  let rec go acc m = if m = 0 then acc else go (acc + (m land 1)) (m lsr 1) in
  go 0 m

let subset_axis ~max_subset_bits library =
  let savers = List.filteri (fun i _ -> i < max_subset_bits) (List.filter is_saver library) in
  let k = List.length savers in
  let n_all = (1 lsl k) - 1 in
  let masks = List.init (1 lsl k) Fun.id in
  let masks =
    (* full library first, then fewer and fewer savers *)
    List.sort
      (fun a b -> match compare (popcount b) (popcount a) with 0 -> compare a b | c -> c)
      masks
  in
  let saver_ids = List.map (fun (e : L.entry) -> e.L.id) savers in
  let subset mask =
    let dropped =
      List.filteri (fun i _ -> mask land (1 lsl i) = 0) saver_ids
    in
    let prims =
      List.filter_map
        (fun (e : L.entry) -> if List.mem e.L.id dropped then None else Some e.L.prim)
        library
    in
    let label =
      if mask = n_all then "full"
      else if mask = 0 && k > 0 then "neutral"
      else
        List.filteri (fun i _ -> mask land (1 lsl i) <> 0) savers
        |> List.map (fun (e : L.entry) -> e.L.prim.P.name)
        |> String.concat "+"
    in
    let label = if label = "" then "full" else label in
    (label, L.make prims)
  in
  Array.of_list (List.map subset masks)

let mapping_axis ~max_mappings ~seed acg =
  let n = Acg.num_cores acg in
  if factorial_capped ~cap:max_mappings n <= max_mappings then
    Array.of_list (Mapping.all ~max_cores:n acg)
  else begin
    let rng = Prng.create ~seed in
    let image m = List.map snd (D.Vmap.bindings m) in
    let seen = Hashtbl.create 64 in
    let out = ref [ Mapping.identity acg ] in
    Hashtbl.replace seen (image (List.hd !out)) ();
    let count = ref 1 and attempts = ref 0 in
    (* distinct-permutation rejection loop; the attempt cap is a safety
       valve, unreachable when n! is far above the cap as here *)
    while !count < max_mappings && !attempts < 50 * max_mappings do
      incr attempts;
      let m = Mapping.random ~rng acg in
      let key = image m in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        out := m :: !out;
        incr count
      end
    done;
    Array.of_list (List.rev !out)
  end

let axes ?(max_mappings = 24) ?(max_subset_bits = 4) ?(bw_scales = default_bw_scales)
    ~seed ~library acg =
  if max_mappings < 1 then invalid_arg "Explore.axes: max_mappings < 1";
  if Array.length bw_scales = 0 then invalid_arg "Explore.axes: empty bw_scales";
  Array.iter
    (fun b -> if b <= 0.0 then invalid_arg "Explore.axes: non-positive bw_scale")
    bw_scales;
  {
    mappings = mapping_axis ~max_mappings ~seed acg;
    subsets = subset_axis ~max_subset_bits library;
    bw_scales;
  }

let space_size a = Array.length a.mappings * Array.length a.subsets * Array.length a.bw_scales

type point = {
  index : int;
  mapping : int;
  subset : int;
  bw_scale : float;
  vec : Pareto.vector;
  cost : float;
  links : int;
}

let default_budget =
  Bb.Budget.(default |> with_timeout_s None |> with_max_nodes 50_000 |> with_domains 1)

(* the floorplan depends only on the vertex-id range, which a permutation
   mapping preserves: every point of a scenario shares one placement *)
let grid_floorplan acg =
  let max_id = D.fold_vertices (fun v m -> max v m) (Acg.graph acg) 1 in
  Noc_energy.Floorplan.grid (Noc_energy.Floorplan.uniform_cores ~n:max_id ~size_mm:2.0)

let latency_of ~tech ~bw_scale acg arch =
  let capacity = bw_scale *. tech.Noc_energy.Technology.link_bandwidth in
  let loads = Syn.link_load acg arch in
  let link_delay u v =
    let load = match D.Edge_map.find_opt (u, v) loads with Some l -> l | None -> 0.0 in
    let util = Float.min 0.95 (load /. capacity) in
    1.0 +. (util /. (1.0 -. util))
  in
  let rec path_delay = function
    | a :: (b :: _ as rest) -> link_delay a b +. path_delay rest
    | _ -> 0.0
  in
  let weighted, volume =
    D.fold_edges
      (fun src dst (acc, vol) ->
        match Syn.route arch ~src ~dst with
        | None -> (acc, vol)
        | Some path ->
            let v = Acg.volume acg src dst in
            let w = if v > 0 then v else 1 in
            (acc +. (float_of_int w *. path_delay path), vol + w))
      (Acg.graph acg) (0.0, 0)
  in
  if volume = 0 then 0.0 else weighted /. float_of_int volume

let area_of ~fp ~bw_scale arch =
  let topo = arch.Syn.topology in
  let ports2 =
    D.fold_vertices
      (fun v acc ->
        let p = float_of_int (Syn.router_ports arch v) in
        acc +. (p *. p))
      topo 0.0
  in
  let wire_mm =
    D.fold_edges
      (fun u v acc ->
        if u < v then acc +. Noc_energy.Floorplan.distance_mm fp u v else acc)
      topo 0.0
  in
  bw_scale *. ((0.02 *. ports2) +. (0.01 *. wire_mm))

let evaluate ?(tech = Noc_energy.Technology.cmos_180nm) ?(budget = default_budget) axes acg
    index =
  let space = space_size axes in
  if index < 0 || index >= space then
    invalid_arg
      (Printf.sprintf "Explore.evaluate: index %d outside space of %d points" index space);
  let n_bw = Array.length axes.bw_scales in
  let n_sub = Array.length axes.subsets in
  let bi = index mod n_bw in
  let si = index / n_bw mod n_sub in
  let mi = index / n_bw / n_sub in
  let bw_scale = axes.bw_scales.(bi) in
  let _, library = axes.subsets.(si) in
  (* per-point determinism: sequential search, node budget only *)
  let budget = { budget with Bb.Budget.domains = 1; timeout_s = None } in
  let acg' = Mapping.apply axes.mappings.(mi) acg in
  let decomp, stats = Bb.decompose ~budget ~library acg' in
  let arch = Syn.custom acg' decomp in
  let fp = grid_floorplan acg' in
  let vec =
    {
      Pareto.energy_pj = Syn.total_energy ~tech ~fp acg' arch;
      latency = latency_of ~tech ~bw_scale acg' arch;
      area_mm2 = area_of ~fp ~bw_scale arch;
    }
  in
  {
    index;
    mapping = mi;
    subset = si;
    bw_scale;
    vec;
    cost = stats.Bb.best_cost;
    links = Syn.link_count arch;
  }

type result = {
  evaluated : point array;
  front : point list;
  ref_point : Pareto.vector;
  hypervolume : float;
  space : int;
  steals : int;
}

let run ?(observe = Obs.disabled) ?tech ?budget ?(domains = 1) ?(points = 64) ~seed axes acg =
  let space = space_size axes in
  if space = 0 then invalid_arg "Explore.run: empty design space";
  let indices =
    if points <= 0 || points >= space then Array.init space Fun.id
    else begin
      (* the sample is a function of the seed alone, never of [domains] *)
      let arr = Array.init space Fun.id in
      Prng.shuffle (Prng.create ~seed) arr;
      let sel = Array.sub arr 0 points in
      Array.sort compare sel;
      sel
    end
  in
  let evaluated, ws =
    Obs.span observe ~cat:"explore"
      ~args:[ ("points", Json.Int (Array.length indices)); ("space", Json.Int space) ]
      "explore.evaluate"
      (fun () -> Noc_core.Ws.map ~domains (fun i -> evaluate ?tech ?budget axes acg i) indices)
  in
  let entries =
    Array.to_list (Array.map (fun p -> { Pareto.vec = p.vec; id = p.index }) evaluated)
  in
  let front_entries = Pareto.entries (Pareto.of_entries entries) in
  (* the incremental archive must agree with the exact O(n^2) filter *)
  assert (front_entries = Pareto.filter_reference entries);
  let by_index = Hashtbl.create (Array.length evaluated) in
  Array.iter (fun p -> Hashtbl.replace by_index p.index p) evaluated;
  let front = List.map (fun (e : Pareto.entry) -> Hashtbl.find by_index e.id) front_entries in
  let ref_point = Pareto.reference_point (List.map (fun e -> e.Pareto.vec) entries) in
  let hypervolume =
    Pareto.hypervolume ~ref_point (List.map (fun p -> p.vec) front)
  in
  if Obs.enabled observe then begin
    Obs.Counter.add (Obs.counter observe "explore.points") (Array.length evaluated);
    Obs.Counter.add (Obs.counter observe "explore.steals") ws.Noc_core.Ws.steals;
    Obs.Gauge.set (Obs.gauge observe "explore.front_size") (float_of_int (List.length front));
    Obs.Gauge.set (Obs.gauge observe "explore.hv") hypervolume
  end;
  { evaluated; front; ref_point; hypervolume; space; steals = ws.Noc_core.Ws.steals }

let mapping_image m = List.map snd (D.Vmap.bindings m)

let vector_json (v : Pareto.vector) =
  Json.Obj
    [
      ("energy_pj", Json.Float v.energy_pj);
      ("latency", Json.Float v.latency);
      ("area_mm2", Json.Float v.area_mm2);
    ]

let point_json axes p =
  let label, _ = axes.subsets.(p.subset) in
  Json.Obj
    [
      ("index", Json.Int p.index);
      ("mapping", Json.Int p.mapping);
      ( "mapping_image",
        Json.List (List.map (fun t -> Json.Int t) (mapping_image axes.mappings.(p.mapping))) );
      ("subset", Json.Str label);
      ("bw_scale", Json.Float p.bw_scale);
      ("energy_pj", Json.Float p.vec.Pareto.energy_pj);
      ("latency", Json.Float p.vec.Pareto.latency);
      ("area_mm2", Json.Float p.vec.Pareto.area_mm2);
      ("cost", Json.Float p.cost);
      ("links", Json.Int p.links);
    ]

let to_json ?(name = "acg") axes r =
  Json.Obj
    [
      ("schema", Json.Str "nocsynth-explore");
      ("version", Json.Int 1);
      ("scenario", Json.Str name);
      ( "axes",
        Json.Obj
          [
            ("mappings", Json.Int (Array.length axes.mappings));
            ( "subsets",
              Json.List
                (Array.to_list (Array.map (fun (l, _) -> Json.Str l) axes.subsets)) );
            ( "bw_scales",
              Json.List
                (Array.to_list (Array.map (fun b -> Json.Float b) axes.bw_scales)) );
          ] );
      ("space", Json.Int r.space);
      ("points", Json.Int (Array.length r.evaluated));
      ("front_size", Json.Int (List.length r.front));
      ("ref_point", vector_json r.ref_point);
      ("hypervolume", Json.Float r.hypervolume);
      ("front", Json.List (List.map (point_json axes) r.front));
    ]

let csv_header = "scenario,index,mapping,subset,bw_scale,energy_pj,latency,area_mm2,cost,links"

let to_csv_rows ?(name = "acg") axes r =
  List.map
    (fun p ->
      let label, _ = axes.subsets.(p.subset) in
      Printf.sprintf "%s,%d,%d,%s,%g,%.6f,%.6f,%.6f,%g,%d" name p.index p.mapping label
        p.bw_scale p.vec.Pareto.energy_pj p.vec.Pareto.latency p.vec.Pareto.area_mm2 p.cost
        p.links)
    r.front
