type vector = { energy_pj : float; latency : float; area_mm2 : float }

let dominates a b =
  a.energy_pj <= b.energy_pj && a.latency <= b.latency && a.area_mm2 <= b.area_mm2
  && (a.energy_pj < b.energy_pj || a.latency < b.latency || a.area_mm2 < b.area_mm2)

let compare_vector a b =
  match compare a.energy_pj b.energy_pj with
  | 0 -> (
      match compare a.latency b.latency with
      | 0 -> compare a.area_mm2 b.area_mm2
      | c -> c)
  | c -> c

type entry = { vec : vector; id : int }

type t = entry list
(* unordered internally; [entries] canonicalizes *)

let empty = []
let size = List.length

let add e t =
  if List.exists (fun f -> dominates f.vec e.vec) t then t
  else e :: List.filter (fun f -> not (dominates e.vec f.vec)) t

let of_entries es = List.fold_left (fun t e -> add e t) empty es

let compare_entry a b =
  match compare_vector a.vec b.vec with 0 -> compare a.id b.id | c -> c

let entries t = List.sort compare_entry t

let filter_reference es =
  List.filter
    (fun e -> not (List.exists (fun f -> dominates f.vec e.vec) es))
    (List.sort compare_entry es)

let reference_point ?(margin = 0.1) = function
  | [] -> invalid_arg "Pareto.reference_point: empty"
  | v :: vs ->
      let max3 a b =
        {
          energy_pj = Float.max a.energy_pj b.energy_pj;
          latency = Float.max a.latency b.latency;
          area_mm2 = Float.max a.area_mm2 b.area_mm2;
        }
      in
      let m = List.fold_left max3 v vs in
      let push x = x +. (margin *. Float.max (Float.abs x) 1.0) in
      { energy_pj = push m.energy_pj; latency = push m.latency; area_mm2 = push m.area_mm2 }

(* 2-D dominated area of the (energy, latency) staircase against the
   reference corner: filter to the 2-D non-dominated subset (x ascending,
   y strictly descending), then sum the vertical slabs.  At x between two
   successive staircase points the covered latency extent is ref.y - y_i. *)
let area2 ~rx ~ry pts =
  let pts = List.filter (fun (x, y) -> x < rx && y < ry) pts in
  let sorted = List.sort compare pts in
  (* keep (x, y) iff no earlier point has y <= our y; equal x keeps the
     smallest y only (sort puts it first) *)
  let stairs, _ =
    List.fold_left
      (fun (acc, best_y) (x, y) ->
        if y < best_y then ((x, y) :: acc, y) else (acc, best_y))
      ([], infinity) sorted
  in
  let stairs = List.rev stairs in
  let rec sum = function
    | [] -> 0.0
    | (x, y) :: rest ->
        let next_x = match rest with (x', _) :: _ -> x' | [] -> rx in
        ((next_x -. x) *. (ry -. y)) +. sum rest
  in
  sum stairs

let hypervolume ~ref_point vs =
  let inside =
    List.filter
      (fun v ->
        v.energy_pj < ref_point.energy_pj
        && v.latency < ref_point.latency
        && v.area_mm2 < ref_point.area_mm2)
      vs
  in
  (* sweep along the area axis: between two successive distinct area
     levels the active set is fixed, contributing slab-height x 2-D area *)
  let zs = List.sort_uniq compare (List.map (fun v -> v.area_mm2) inside) in
  let rec slabs = function
    | [] -> 0.0
    | z :: rest ->
        let z_next = match rest with z' :: _ -> z' | [] -> ref_point.area_mm2 in
        let active =
          List.filter_map
            (fun v -> if v.area_mm2 <= z then Some (v.energy_pj, v.latency) else None)
            inside
        in
        ((z_next -. z) *. area2 ~rx:ref_point.energy_pj ~ry:ref_point.latency active)
        +. slabs rest
  in
  slabs zs
