(** Design-space exploration: the multi-objective Pareto driver.

    The paper fixes the core-to-node mapping and minimizes one scalar
    cost.  This driver treats three axes the paper holds constant as free:

    - {b mapping} — which permutation of the core ids the application is
      placed under (Marcon et al.'s mapping degree of freedom; the grid
      floorplan and therefore every Eq. 1 link length follows the ids);
    - {b library subset} — which {e saver} primitives (gossip graphs,
      whose implementations use fewer links than the edges they cover) the
      decomposition may instantiate; neutral primitives are always
      available, so every subset still yields a valid decomposition;
    - {b bandwidth provisioning} — a scale factor on every physical
      link's capacity: wider links cut queueing latency but cost
      proportionally more area.

    Each design point runs the existing decompose → synthesize pipeline
    and is scored as an (energy, latency, area) vector ({!Pareto.vector});
    the non-dominated set is maintained incrementally and cross-checked
    against the exact O(n²) filter, and the front is summarized by its
    dominated hypervolume against a per-scenario reference point.

    Points are evaluated with sequential per-point search budgets (node
    budget only, no wall clock), so a point's vector is a pure function of
    (axes, ACG, index); sharding across domains reuses the work-stealing
    scheduler ({!Noc_core.Ws}) and cannot change the front. *)

type axes = {
  mappings : Noc_core.Mapping.t array;
      (** index 0 is always the identity; all [n!] permutations when that
          fits the cap, else identity + seeded random permutations *)
  subsets : (string * Noc_primitives.Library.t) array;
      (** label and library per subset choice, e.g. ["MGG4+G124"];
          index 0 is the full library *)
  bw_scales : float array;  (** link-capacity multipliers, ascending *)
}

val default_bw_scales : float array
(** [[| 0.5; 1.0; 2.0 |]] — under-, nominally- and over-provisioned. *)

val axes :
  ?max_mappings:int ->
  ?max_subset_bits:int ->
  ?bw_scales:float array ->
  seed:int ->
  library:Noc_primitives.Library.t ->
  Noc_core.Acg.t ->
  axes
(** Builds the discrete design space of a scenario.  The mapping axis is
    every permutation of the core ids when [n! <= max_mappings] (default
    24), otherwise the identity plus [max_mappings - 1] distinct seeded
    random permutations.  The subset axis toggles each saver primitive of
    [library] independently (capped at the first [max_subset_bits]
    savers, default 4; neutral primitives are always retained), full
    library first, then masks in decreasing-cardinality binary order. *)

val space_size : axes -> int
(** [Array.length mappings * Array.length subsets * Array.length bw_scales]. *)

type point = {
  index : int;  (** mixed-radix index into the space: the design-point id *)
  mapping : int;  (** index into [axes.mappings] *)
  subset : int;  (** index into [axes.subsets] *)
  bw_scale : float;  (** the decoded [axes.bw_scales] value *)
  vec : Pareto.vector;
  cost : float;  (** decomposition cost (Edge_count) *)
  links : int;  (** physical links of the synthesized architecture *)
}

val default_budget : Noc_core.Branch_bound.Budget.t
(** Per-point search budget: 50k nodes, no wall clock, one domain — the
    no-timeout/sequential combination is what makes a point's evaluation
    deterministic (anytime truncation under a node budget is reproducible
    when the search is sequential). *)

val evaluate :
  ?tech:Noc_energy.Technology.t ->
  ?budget:Noc_core.Branch_bound.Budget.t ->
  axes ->
  Noc_core.Acg.t ->
  int ->
  point
(** Scores design point [index]: applies the mapping, decomposes under the
    subset library (Edge_count cost), glues the architecture, and computes

    - energy: Eq. 5 total communication energy on the id-ordered grid
      floorplan (180 nm unless [tech] overrides);
    - latency: volume-weighted mean over flows of the route's per-hop
      service (1 cycle) plus an M/M/1-style queueing term
      [u / (1 - u)] per link, where [u] is the link's aggregate bandwidth
      demand over its provisioned capacity
      [bw_scale * tech.link_bandwidth] (utilization capped at 0.95);
    - area: [bw_scale * (0.02 * Σ ports² + 0.01 * Σ link length_mm)] —
      quadratic crossbars plus wiring, both scaled by the provisioned
      width.

    [budget]'s [domains] is forced to 1 and its [timeout_s] dropped; see
    {!default_budget}.  @raise Invalid_argument if [index] is outside the
    space. *)

type result = {
  evaluated : point array;  (** ascending index order, whatever the shard *)
  front : point list;  (** canonical {!Pareto.compare_vector} order *)
  ref_point : Pareto.vector;
      (** {!Pareto.reference_point} over every evaluated vector *)
  hypervolume : float;
  space : int;  (** total design points in the axes *)
  steals : int;  (** work-stealing tasks migrated across domains *)
}

val run :
  ?observe:Noc_obs.Obs.t ->
  ?tech:Noc_energy.Technology.t ->
  ?budget:Noc_core.Branch_bound.Budget.t ->
  ?domains:int ->
  ?points:int ->
  seed:int ->
  axes ->
  Noc_core.Acg.t ->
  result
(** Evaluates [points] design points (default 64; [0] or anything at or
    above {!space_size} means full enumeration) sharded over [domains]
    workers (default 1).  When sampling, the index subset is drawn by a
    seeded shuffle of the whole space — a function of [seed] only, so the
    front is identical for any [domains].  The incremental front is
    cross-checked against {!Pareto.filter_reference} (assertion failure on
    divergence — that would be a bug, not an input problem).

    With an enabled observer: an [explore.evaluate] span around the
    sharded evaluation, counters [explore.points] and [explore.steals],
    gauges [explore.front_size] and [explore.hv]. *)

val to_json : ?name:string -> axes -> result -> Noc_obs.Obs.Json.t
(** One self-describing object: schema header, axes cardinalities, the
    reference point, hypervolume and the front (one object per point with
    its axes decoded — the mapping's image, the subset label, the scale). *)

val csv_header : string

val to_csv_rows : ?name:string -> axes -> result -> string list
(** One CSV row per front point, matching {!csv_header} ([scenario,index,
    mapping,subset,bw_scale,energy_pj,latency,area_mm2,cost,links]). *)
