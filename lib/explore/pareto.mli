(** Multi-objective machinery: dominance, non-dominated archives and
    hypervolume over (energy, latency, area) vectors, all minimized.

    The paper optimizes one scalar cost; the exploration driver
    ({!Explore}) follows Kao & Fink's Pareto-optimization framing instead
    and needs exactly three pieces: a dominance test, a non-dominated set
    maintained incrementally as points stream in (with an exact O(n²)
    reference filter to cross-check it), and the dominated-hypervolume
    indicator that turns a front into one regression-gateable number.

    Everything here is pure and deterministic; the archive is a persistent
    value, so snapshots along an exploration cost nothing. *)

type vector = {
  energy_pj : float;  (** Eq. 5 communication energy of the architecture *)
  latency : float;  (** volume-weighted analytic per-flow latency, cycles *)
  area_mm2 : float;  (** router + wiring area proxy *)
}

val dominates : vector -> vector -> bool
(** [dominates a b]: [a] is no worse than [b] on every objective and
    strictly better on at least one.  Equal vectors do not dominate each
    other. *)

val compare_vector : vector -> vector -> int
(** Lexicographic (energy, latency, area): the canonical front order. *)

type entry = { vec : vector; id : int  (** the design-point index *) }

type t
(** A non-dominated archive: the entries seen so far whose vectors no other
    seen vector dominates.  Entries with equal vectors are all kept (they
    are distinct design points realizing the same trade-off). *)

val empty : t
val size : t -> int

val add : entry -> t -> t
(** Insert one entry: dropped if dominated by the archive, otherwise added
    with every entry it dominates evicted.  The resulting {e set} of
    entries is independent of insertion order. *)

val of_entries : entry list -> t
(** Fold {!add} over the list. *)

val entries : t -> entry list
(** Canonical order: {!compare_vector}, ties by ascending [id]. *)

val filter_reference : entry list -> entry list
(** The exact O(n²) non-dominated filter (each entry tested against every
    other), in the same canonical order: the oracle for {!add}'s
    incremental maintenance.  {!Explore.run} asserts the two agree on
    every run. *)

val reference_point : ?margin:float -> vector list -> vector
(** Component-wise maximum of the vectors, pushed out by [margin] (default
    0.1, i.e. 10%) of each coordinate's magnitude (at least 1.0), so every
    point strictly dominates the reference and boundary points contribute
    nonzero hypervolume.  @raise Invalid_argument on []. *)

val hypervolume : ref_point:vector -> vector list -> float
(** Volume of the union of the boxes spanned between each vector and
    [ref_point] (minimization: box [v] is [[v, ref_point]]).  Computed by
    sweeping area slabs along the area axis with a 2-D staircase per slab —
    O(n² log n) worst case, exact up to float rounding.  Vectors not
    strictly inside the reference contribute nothing; dominated vectors are
    harmless (their boxes are subsets).  Adding a vector can only grow the
    union, so the indicator is monotone under archive growth. *)
