(** Reference subgraph-isomorphism oracle: exhaustive enumeration over a
    dense adjacency matrix.

    The production engines ({!Noc_graph.Vf2} on the CSR kernel,
    {!Noc_graph.Vf2_map} on persistent maps) order candidates, prune with
    degree look-aheads and deduplicate states; this module does none of
    that.  It tries every injective assignment of pattern vertices to
    target vertices in plain lexicographic order and keeps the ones whose
    pattern edges all land on target edges — a dozen lines that can be
    checked by eye against Definition 3 of the paper, at the price of
    O(n_t^{n_p}) time.  Use it only on small graphs (the differential
    suites stay at or below 9 vertices). *)

type mapping = int Noc_graph.Digraph.Vmap.t
(** Pattern vertex [->] target vertex, as in {!Noc_graph.Vf2.mapping}. *)

val find_all :
  pattern:Noc_graph.Digraph.t -> target:Noc_graph.Digraph.t -> mapping list
(** Every subgraph monomorphism from [pattern] into [target] (injective on
    vertices, every pattern edge mapped to a target edge; the image need
    not be induced).  Enumeration order: pattern vertices ascending, target
    candidates ascending — i.e. lexicographic in the assignment vector. *)

val count : pattern:Noc_graph.Digraph.t -> target:Noc_graph.Digraph.t -> int

val canonical : mapping list -> (int * int) list list
(** Each mapping as its sorted binding list, the whole set sorted: the
    order-insensitive form the differential tests compare engines with. *)

val covered_sets :
  pattern:Noc_graph.Digraph.t ->
  target:Noc_graph.Digraph.t ->
  Noc_graph.Digraph.Edge.t list list
(** The distinct covered-target-edge sets over all monomorphisms, each set
    sorted, the list of sets sorted and deduplicated.  This is the ground
    truth for {!Noc_graph.Vf2.find_distinct_images}: the engines may pick
    different representatives per set, but the set family must agree. *)
