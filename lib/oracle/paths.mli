(** Brute-force path search — ground truth for {!Noc_resil.Reroute}.

    The dumbest correct algorithm: depth-first search with an explicit
    visited list, neighbors scanned in ascending vertex order, banned
    resources checked edge by edge.  No memoization, no BFS optimality —
    only existence matters for the differential property. *)

val find_path :
  ?banned_links:(int * int) list ->
  ?banned_switches:int list ->
  Noc_graph.Digraph.t ->
  src:int ->
  dst:int ->
  int list option
(** Some directed path [[src; ...; dst]] avoiding the banned links (in
    either direction; endpoint order does not matter) and banned switches,
    or [None] if none exists.  A banned [src] or [dst] (or one missing
    from the graph) yields [None]; [src = dst] yields [Some [src]]. *)

val exists_path :
  ?banned_links:(int * int) list ->
  ?banned_switches:int list ->
  Noc_graph.Digraph.t ->
  src:int ->
  dst:int ->
  bool
