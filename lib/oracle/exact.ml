module D = Noc_graph.Digraph
module L = Noc_primitives.Library
module P = Noc_primitives.Primitive

let impl_links entry = D.undirected_edge_count entry.L.prim.P.impl
let repr_edges entry = D.num_edges entry.L.prim.P.repr

let saver_entries library =
  List.filter (fun e -> impl_links e < repr_edges e) library

let optimal_cost ?(all_primitives = false) ?(max_states = 200_000) ~library g =
  let entries = if all_primitives then library else saver_entries library in
  let entries = List.map (fun e -> (float_of_int (impl_links e), e.L.prim.P.repr)) entries in
  let memo : (D.Edge.t list, float) Hashtbl.t = Hashtbl.create 256 in
  let rec solve edges =
    match Hashtbl.find_opt memo edges with
    | Some c -> c
    | None ->
        if Hashtbl.length memo >= max_states then
          invalid_arg "Exact.optimal_cost: state space too large for brute force";
        let target = D.of_edges edges in
        let best = ref (float_of_int (List.length edges)) in
        List.iter
          (fun (links, pattern) ->
            List.iter
              (fun covered ->
                let rest =
                  List.filter (fun e -> not (List.mem e covered)) edges
                in
                let c = links +. solve rest in
                if c < !best then best := c)
              (Iso.covered_sets ~pattern ~target))
          entries;
        Hashtbl.replace memo edges !best;
        !best
  in
  solve (D.edges g)
