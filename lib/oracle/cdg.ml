module D = Noc_graph.Digraph
module Syn = Noc_core.Synthesis

let cdg_edges (arch : Syn.t) =
  let seen = Hashtbl.create 64 in
  D.Edge_map.iter
    (fun _ path ->
      let rec chans = function
        | a :: (b :: _ as rest) -> (a, b) :: chans rest
        | [ _ ] | [] -> []
      in
      let rec deps = function
        | c1 :: (c2 :: _ as rest) ->
            Hashtbl.replace seen (c1, c2) ();
            deps rest
        | [ _ ] | [] -> ()
      in
      deps (chans path))
    arch.Syn.routes;
  List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) seen [])

let is_deadlock_free arch =
  let edges = cdg_edges arch in
  (* adjacency over channel vertices *)
  let succ = Hashtbl.create 64 in
  let verts = Hashtbl.create 64 in
  List.iter
    (fun (c1, c2) ->
      Hashtbl.replace verts c1 ();
      Hashtbl.replace verts c2 ();
      Hashtbl.replace succ c1 (c2 :: Option.value ~default:[] (Hashtbl.find_opt succ c1)))
    edges;
  (* three-color DFS with an explicit stack: gray on the stack = back edge *)
  let color = Hashtbl.create 64 in
  let cyclic = ref false in
  Hashtbl.iter
    (fun v () ->
      if (not !cyclic) && not (Hashtbl.mem color v) then begin
        let stack = ref [ (v, Option.value ~default:[] (Hashtbl.find_opt succ v)) ] in
        Hashtbl.replace color v `Gray;
        while !stack <> [] && not !cyclic do
          match !stack with
          | [] -> ()
          | (u, todo) :: rest -> (
              match todo with
              | [] ->
                  Hashtbl.replace color u `Black;
                  stack := rest
              | w :: ws -> (
                  stack := (u, ws) :: rest;
                  match Hashtbl.find_opt color w with
                  | Some `Gray -> cyclic := true
                  | Some `Black -> ()
                  | None ->
                      Hashtbl.replace color w `Gray;
                      stack :=
                        (w, Option.value ~default:[] (Hashtbl.find_opt succ w)) :: !stack))
        done
      end)
    verts;
  not !cyclic
