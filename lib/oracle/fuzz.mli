(** Differential fuzzing harness for the synthesis pipeline.

    Random ACGs (several structural families, random volumes and
    bandwidths, at most 8 cores) are run through a fixed catalog of named
    {e properties}: each property exercises one optimized production path
    against its brute-force oracle ({!Exact}, {!Bisection}, {!Iso},
    {!Recost}, {!Cdg}) or checks a paper invariant (Eq. 2 edge partition,
    route validity, oracle-cost dominance).  A failing case is shrunk —
    greedily dropping edges, then isolated vertices, while the property
    keeps failing — and can be persisted to a crash corpus directory that
    {!replay} (and the test suite) re-runs as regression cases.

    Everything is deterministic: case [i] of a run with seed [s] is
    generated from a PRNG seeded with [s + i], and properties derive any
    auxiliary randomness from the ACG itself, so a saved seed reproduces
    the exact failure. *)

type failure = {
  property : string;
  case_seed : int;  (** PRNG seed that regenerates the original case *)
  detail : string;  (** what diverged, on the shrunk case *)
  acg : Noc_core.Acg.t;  (** the shrunk counterexample *)
  shrink_steps : int;  (** edges/vertices removed while still failing *)
}

type report = {
  cases : int;
  properties : int;  (** properties evaluated per case *)
  failures : failure list;
  shrink_steps : int;
  elapsed_s : float;
}

val property_names : string list
(** The catalog, in run order: ["decompose-oracle"; "bisection-oracle";
    ["vf2-naive"]; "cost-recompute"; "deadlock-cdg"; "edge-partition";
    "routes-valid"; "reroute-avoids-faults"]. *)

val gen_acg : rng:Noc_util.Prng.t -> Noc_core.Acg.t
(** One random case: 3–8 cores, a structural family drawn from
    Erdős–Rényi / DAG / planted-primitive / G(n,m), volumes in [1, 256],
    bandwidths in [0, 0.5). *)

val check :
  ?library:Noc_primitives.Library.t ->
  string ->
  Noc_core.Acg.t ->
  (unit, string) result
(** Run one named property; any escaped exception is reported as
    [Error].  Unknown names are an [Error] too. *)

val shrink :
  ?library:Noc_primitives.Library.t ->
  property:string ->
  Noc_core.Acg.t ->
  Noc_core.Acg.t * int
(** Greedy 1-edge/1-vertex minimization: the returned ACG still fails the
    property (or is the input if nothing smaller fails), plus the number
    of successful removal steps. *)

val run :
  ?observe:Noc_obs.Obs.t ->
  ?library:Noc_primitives.Library.t ->
  ?properties:string list ->
  seed:int ->
  cases:int ->
  unit ->
  report
(** Fuzz [cases] random ACGs.  After a property fails once it is skipped
    for the remaining cases (one shrunk counterexample per property per
    run).  When [observe] is enabled, publishes [fuzz.cases],
    [fuzz.checks], [fuzz.failures] and [fuzz.shrink_steps] counters. *)

val save_failure : dir:string -> failure -> string
(** Persist a shrunk counterexample as [<property>-seed<seed>.acg] under
    [dir] (created if missing): comment headers carrying the property,
    seed and detail, then the ACG in {!Noc_core.Acg_io} format.  Returns
    the path written. *)

val replay :
  ?observe:Noc_obs.Obs.t ->
  ?library:Noc_primitives.Library.t ->
  dir:string ->
  unit ->
  int * (string * string) list
(** Re-run every [*.acg] file under [dir] against its recorded property
    (all properties when the header is absent).  Returns (cases replayed,
    failures as file × detail) — an empty failure list means every past
    crash stays fixed.  A missing directory replays zero cases.  When
    [observe] is enabled, publishes [fuzz.corpus_size] and
    [fuzz.corpus_failures]. *)

val pp_report : Format.formatter -> report -> unit
