module D = Noc_graph.Digraph
module Tech = Noc_energy.Technology
module Fp = Noc_energy.Floorplan
module Acg = Noc_core.Acg
module Matching = Noc_core.Matching

let manhattan_mm fp a b =
  let xa, ya = Fp.position fp a and xb, yb = Fp.position fp b in
  abs_float (xa -. xb) +. abs_float (ya -. yb)

let link_bit_energy_pj (tech : Tech.t) len =
  (tech.Tech.el_bit_per_mm *. len)
  +. (float_of_int (int_of_float (len /. tech.Tech.repeater_spacing_mm))
     *. tech.Tech.e_repeater)

let path_bit_energy_pj ~tech ~fp path =
  let rec links = function
    | a :: (b :: _ as rest) -> link_bit_energy_pj tech (manhattan_mm fp a b) :: links rest
    | [ _ ] | [] -> []
  in
  match path with
  | [] | [ _ ] -> invalid_arg "Recost.path_bit_energy_pj: path too short"
  | _ ->
      (float_of_int (List.length path) *. (tech : Tech.t).Tech.es_bit)
      +. List.fold_left ( +. ) 0.0 (links path)

let matching_cost cost acg (m : Matching.t) =
  match cost with
  | Noc_core.Cost.Edge_count ->
      float_of_int (D.undirected_edge_count (Matching.impl_in_acg m))
  | Noc_core.Cost.Energy { tech; fp } ->
      List.fold_left
        (fun acc (u, v) ->
          match Matching.acg_route m ~src:u ~dst:v with
          | None ->
              invalid_arg
                (Printf.sprintf "Recost.matching_cost: covered edge %d->%d has no route"
                   u v)
          | Some path ->
              acc
              +. (float_of_int (Acg.volume acg u v) *. path_bit_energy_pj ~tech ~fp path))
        0.0 m.Matching.covered

let remainder_cost cost acg remainder =
  match cost with
  | Noc_core.Cost.Edge_count -> float_of_int (D.num_edges remainder)
  | Noc_core.Cost.Energy { tech; fp } ->
      D.fold_edges
        (fun u v acc ->
          acc
          +. (float_of_int (Acg.volume acg u v) *. path_bit_energy_pj ~tech ~fp [ u; v ]))
        remainder 0.0

let decomposition_cost cost acg (d : Noc_core.Decomposition.t) =
  List.fold_left
    (fun acc m -> acc +. matching_cost cost acg m)
    (remainder_cost cost acg d.Noc_core.Decomposition.remainder)
    d.Noc_core.Decomposition.matchings
