(** Independent channel-dependency-graph deadlock oracle.

    {!Noc_core.Deadlock} builds its CDG through the shared
    {!Noc_graph.Traversal} cycle machinery; this module re-derives the
    Dally & Seitz construction straight from the architecture's route
    table and runs its own three-color DFS, sharing no graph code with the
    production checker. *)

val cdg_edges :
  Noc_core.Synthesis.t -> ((int * int) * (int * int)) list
(** All dependencies between consecutive channels over all routes,
    deduplicated and sorted — directly comparable with a sorted
    {!Noc_core.Deadlock.channel_dependency_graph}. *)

val is_deadlock_free : Noc_core.Synthesis.t -> bool
(** True iff the re-derived CDG is acyclic. *)
