(** Brute-force Pareto-front oracle for the exploration driver.

    For oracle-sized ACGs (at most 6 cores) the whole design space —
    every core permutation, every library subset, every bandwidth scale —
    is small enough to evaluate outright, so the exact front and the exact
    hypervolume can be computed with none of the driver's incremental
    machinery:

    - the front is the literal definition: keep a point iff no evaluated
      point dominates it (no archive, no streaming, no eviction);
    - the hypervolume is inclusion–exclusion over all [2^n] subsets of the
      front's boxes — exponential and term-by-term checkable, where the
      driver sweeps slabs and staircases — switching to an equally-exact
      cell-decomposition sum when the front has too many distinct vectors
      for [2^n] terms.

    Points themselves are scored by {!Noc_explore.Explore.evaluate}, so the
    oracle checks the {e front and indicator} machinery, not the objective
    model: the driver under full enumeration must recover exactly this
    front ([test/suite_explore.ml] asserts equality point-for-point), and
    under sampling a subset of it. *)

type t = {
  points : Noc_explore.Explore.point list;
      (** every design point of the space, in index order *)
  front : Noc_explore.Explore.point list;
      (** the exact non-dominated subset, in the driver's canonical order
          ({!Noc_explore.Pareto.compare_vector}, ties by index) *)
  ref_point : Noc_explore.Pareto.vector;
  hypervolume : float;
}

val max_cores_guard : int
(** 6 — beyond this, [n!] permutations make exhaustion unreasonable. *)

val exact_front : Noc_explore.Explore.point list -> Noc_explore.Explore.point list
(** The definitional non-dominated filter over arbitrary evaluated points
    (each tested against all others), canonically ordered. *)

val hypervolume_ie :
  ref_point:Noc_explore.Pareto.vector -> Noc_explore.Pareto.vector list -> float
(** Exact dominated hypervolume by inclusion–exclusion.  Vectors not
    strictly inside the reference are ignored; duplicates are collapsed.
    @raise Invalid_argument beyond 20 distinct boxes ([2^n] terms). *)

val hypervolume_grid :
  ref_point:Noc_explore.Pareto.vector -> Noc_explore.Pareto.vector list -> float
(** Exact dominated hypervolume by cell decomposition: the distinct
    coordinate values cut space into cells inside which dominance is
    constant, and every dominated cell's volume is summed.  O(n⁴) with no
    subset explosion — used by {!compute} past the inclusion–exclusion
    guard, and cross-checked against {!hypervolume_ie} below it. *)

val compute :
  ?tech:Noc_energy.Technology.t ->
  ?budget:Noc_core.Branch_bound.Budget.t ->
  ?max_subset_bits:int ->
  library:Noc_primitives.Library.t ->
  Noc_core.Acg.t ->
  t
(** Evaluates the entire design space of the ACG (axes built exactly as the
    driver builds them, with the mapping cap opened to the full permutation
    group) and returns the exact front and hypervolume.
    @raise Invalid_argument above {!max_cores_guard} cores. *)
