module D = Noc_graph.Digraph

type mapping = int D.Vmap.t

let find_all ~pattern ~target =
  let pverts = Array.of_list (D.vertex_list pattern) in
  let tverts = Array.of_list (D.vertex_list target) in
  let np = Array.length pverts and nt = Array.length tverts in
  if np > nt then []
  else begin
    (* dense adjacency matrix of the target *)
    let idx = Hashtbl.create (max 1 nt) in
    Array.iteri (fun i v -> Hashtbl.replace idx v i) tverts;
    let adj = Array.make_matrix (max 1 nt) (max 1 nt) false in
    D.iter_edges
      (fun u v -> adj.(Hashtbl.find idx u).(Hashtbl.find idx v) <- true)
      target;
    (* pattern edges as slot pairs into [pverts] *)
    let pslot = Hashtbl.create (max 1 np) in
    Array.iteri (fun i v -> Hashtbl.replace pslot v i) pverts;
    let pedges =
      List.map (fun (u, v) -> (Hashtbl.find pslot u, Hashtbl.find pslot v)) (D.edges pattern)
    in
    let assigned = Array.make (max 1 np) (-1) in
    let used = Array.make (max 1 nt) false in
    let results = ref [] in
    let rec go i =
      if i = np then
        results :=
          (D.Vmap.of_seq
             (Seq.mapi (fun s t -> (pverts.(s), tverts.(t))) (Array.to_seq assigned)))
          :: !results
      else
        for t = 0 to nt - 1 do
          if not used.(t) then begin
            assigned.(i) <- t;
            (* check every pattern edge whose endpoints are both assigned;
               edges among earlier slots are rechecked — wasteful, obvious *)
            let ok =
              List.for_all
                (fun (a, b) -> a > i || b > i || adj.(assigned.(a)).(assigned.(b)))
                pedges
            in
            if ok then begin
              used.(t) <- true;
              go (i + 1);
              used.(t) <- false
            end;
            assigned.(i) <- -1
          end
        done
    in
    go 0;
    List.rev !results
  end

let count ~pattern ~target = List.length (find_all ~pattern ~target)

let canonical maps =
  List.sort compare (List.map D.Vmap.bindings maps)

let covered_sets ~pattern ~target =
  let image m =
    List.sort D.Edge.compare
      (List.map (fun (u, v) -> (D.Vmap.find u m, D.Vmap.find v m)) (D.edges pattern))
  in
  List.sort_uniq compare (List.map image (find_all ~pattern ~target))
