(** Brute-force minimum-bisection oracle.

    {!Noc_graph.Traversal.min_bisection_cut} is a randomized
    Kernighan–Lin-style heuristic (exact bisection is NP-hard); this module
    simply tries {e every} balanced bipartition and counts the crossing
    pairs, so it is the ground truth the heuristic's answer is checked
    against: the heuristic may only ever report a cut at least as large as
    the oracle's. *)

val cut_size : Noc_graph.Digraph.t -> Noc_graph.Digraph.Vset.t -> int
(** Number of unordered vertex pairs adjacent in the symmetric closure with
    one endpoint inside [half] and one outside — the quantity
    [min_bisection_cut] reports for its returned half. *)

val min_cut : Noc_graph.Digraph.t -> Noc_graph.Digraph.Vset.t * int
(** The optimum over all ⌊n/2⌋-subsets of the vertices (the same balance
    convention as the heuristic); ties break to the lexicographically first
    subset.  The empty graph yields [(empty, 0)].
    @raise Invalid_argument on graphs with more than 20 vertices — the
    enumeration is Θ(C(n, n/2)) and meant for oracle duty only. *)
