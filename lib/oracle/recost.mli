(** First-principles recomputation of the paper's cost functions.

    The production cost path ({!Noc_core.Cost}, {!Noc_core.Matching.cost},
    {!Noc_core.Decomposition.cost}) goes through cached link counts, CSR
    remainder views and the shared {!Noc_energy.Energy_model} helpers.
    This module recomputes the same quantities directly from the raw
    definitions — Eq. 1 ([Ebit = nhops·ES_bit + Σ EL_bit(l)], with
    [EL_bit(l) = el_bit_per_mm·l + ⌊l/spacing⌋·e_repeater]) and Eq. 5
    (volume-weighted sum over every covered edge's route) — sharing nothing
    with the production path except the floorplan coordinates and the
    technology record fields. *)

val path_bit_energy_pj :
  tech:Noc_energy.Technology.t -> fp:Noc_energy.Floorplan.t -> int list -> float
(** Eq. 1 for one vertex path: every vertex on the path is a router
    traversal; every consecutive pair is a link at the Manhattan distance
    between the cores' floorplan positions.
    @raise Invalid_argument on paths with fewer than 2 vertices. *)

val matching_cost :
  Noc_core.Cost.t -> Noc_core.Acg.t -> Noc_core.Matching.t -> float
(** [Edge_count]: the number of undirected physical links of the matching's
    implementation graph, counted on the graph itself.  [Energy]: Eq. 5
    over the matching's routes.
    @raise Invalid_argument under [Energy] if a covered edge has no route —
    the production cost silently drops such edges, which is exactly the
    kind of divergence this oracle exists to expose. *)

val remainder_cost :
  Noc_core.Cost.t -> Noc_core.Acg.t -> Noc_graph.Digraph.t -> float
(** Dedicated-link realization of the remainder: one link per directed edge
    under [Edge_count]; volume × (2 routers + one direct link) under
    [Energy]. *)

val decomposition_cost :
  Noc_core.Cost.t -> Noc_core.Acg.t -> Noc_core.Decomposition.t -> float
(** Eq. 3: matching costs plus remainder cost. *)
