(** Exhaustive decomposition oracle: the ground-truth optimal cost of
    Eq. 4 for small graphs, computed without any of the machinery the
    branch-and-bound search relies on (no VF2, no CSR views, no lower
    bounds, no canonical ordering, no greedy neutral pass).

    The recursion is the literal reading of Definitions 2–4 under the
    wiring cost: a state is the set of still-uncovered edges; its optimal
    cost is the minimum of (a) realizing every remaining edge as a
    dedicated link and (b) for every library primitive and every distinct
    set of remaining edges some monomorphism of that primitive covers
    (enumerated by the naive {!Iso} oracle), the primitive's implementation
    link count plus the optimum of the state minus that set.  Option (a)
    at every state makes this the optimum over early-remainder
    decompositions, the space [Branch_bound.decompose] searches with its
    default [allow_early_remainder = true].

    By default only {e saver} primitives — implementation links strictly
    fewer than representation edges, i.e. the gossip graphs — branch.
    This loses nothing: a monomorphism of a non-saver covers exactly its
    representation-edge count of distinct edges (injectivity), and its
    matching costs its implementation link count ≥ that, so replacing the
    matching with dedicated links never increases the total; the
    saver-only optimum equals the full optimum.  [~all_primitives:true]
    drops the restriction so the claim itself is cross-checked by test
    ({!val-optimal_cost} agrees either way on every graph small enough to
    run both).

    Only the [Edge_count] cost is supported: under the [Energy] cost every
    route visits at least two routers and at least the direct Manhattan
    wire, so no matching ever beats dedicated links and the optimum is
    degenerate (the all-remainder decomposition). *)

val optimal_cost :
  ?all_primitives:bool ->
  ?max_states:int ->
  library:Noc_primitives.Library.t ->
  Noc_graph.Digraph.t ->
  float
(** Ground-truth minimum decomposition cost of the graph under
    [Edge_count].  [max_states] (default 200_000) bounds the memo table.
    @raise Invalid_argument when the state space exceeds [max_states] —
    keep inputs at or below ~8 vertices. *)

val saver_entries : Noc_primitives.Library.t -> Noc_primitives.Library.entry list
(** The entries allowed to branch by default, recomputed from the graphs
    themselves (undirected implementation links < representation edges). *)
