module D = Noc_graph.Digraph
module G = Noc_graph.Generators
module T = Noc_graph.Traversal
module Vf2 = Noc_graph.Vf2
module Vf2_map = Noc_graph.Vf2_map
module P = Noc_primitives.Primitive
module L = Noc_primitives.Library
module Acg = Noc_core.Acg
module Acg_io = Noc_core.Acg_io
module Bb = Noc_core.Branch_bound
module Cost = Noc_core.Cost
module Decomposition = Noc_core.Decomposition
module Matching = Noc_core.Matching
module Syn = Noc_core.Synthesis
module Dead = Noc_core.Deadlock
module Prng = Noc_util.Prng
module Timer = Noc_util.Timer
module Obs = Noc_obs.Obs
module Tech = Noc_energy.Technology
module Fp = Noc_energy.Floorplan

type failure = {
  property : string;
  case_seed : int;
  detail : string;
  acg : Acg.t;
  shrink_steps : int;
}

type report = {
  cases : int;
  properties : int;
  failures : failure list;
  shrink_steps : int;
  elapsed_s : float;
}

let property_names =
  [
    "decompose-oracle";
    "bisection-oracle";
    "vf2-naive";
    "cost-recompute";
    "deadlock-cdg";
    "edge-partition";
    "routes-valid";
    "reroute-avoids-faults";
    "fallback-gap";
  ]

(* ------------------------------------------------------------------ *)
(* Case generation                                                     *)

let gen_acg ~rng =
  let n = Prng.int_in rng 3 8 in
  let g =
    match Prng.int rng 5 with
    | 0 -> G.erdos_renyi ~rng ~n ~p:(0.15 +. Prng.float rng 0.35)
    | 1 -> G.random_dag ~rng ~n ~p:(0.2 +. Prng.float rng 0.4)
    | 2 ->
        (* a primitive-shaped part planted among noise edges: exercises the
           decomposition paths that actually find matchings *)
        let part =
          Prng.choose rng
            [
              G.complete (min n 4);
              G.star (min n (Prng.int_in rng 3 5));
              G.loop (min n (Prng.int_in rng 3 6));
              G.path (min n (Prng.int_in rng 3 6));
            ]
        in
        D.union
          (G.planted ~rng ~n ~parts:[ part ])
          (G.gnm ~rng ~n ~m:(Prng.int rng (n + 1)))
    | 3 ->
        (* large size class: 12-16-core planted-community graphs, the
           shape of the benchmark scaling tier.  The exponential oracles
           bail out via their own range guards here; the polynomial
           differential checks and the anytime/fallback contract get
           exercised well above the 3-8-core comfort zone. *)
        let n = Prng.int_in rng 12 16 in
        G.communities ~rng ~n ~k:(max 1 (n / 5))
          ~p_in:(0.5 +. Prng.float rng 0.4)
          ~p_out:(2.0 /. float_of_int n)
    | _ -> G.gnm ~rng ~n ~m:(Prng.int_in rng 1 (2 * n))
  in
  let volume, bandwidth =
    List.fold_left
      (fun (vol, bw) e ->
        ( D.Edge_map.add e (1 + Prng.int rng 256) vol,
          D.Edge_map.add e (Prng.float rng 0.5) bw ))
      (D.Edge_map.empty, D.Edge_map.empty)
      (D.edges g)
  in
  Acg.make ~graph:g ~volume ~bandwidth ()

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let fail fmt = Format.kasprintf (fun s -> Error s) fmt

let approx_eq ?(tol = 1e-6) a b =
  Float.abs (a -. b) <= tol *. (1. +. Float.abs a +. Float.abs b)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* properties that need auxiliary randomness derive it from the case
   itself, so a saved ACG replays identically *)
let graph_seed g = Hashtbl.hash (D.edges g, D.vertex_list g) land max_int

let prop_decompose library acg =
  let g = Acg.graph acg in
  match Exact.optimal_cost ~library g with
  | exception Invalid_argument m when contains_substring m "state space" ->
      Ok () (* out of oracle range; nothing to compare *)
  | oracle -> (
      let wide = { Bb.default_options with max_matches_per_step = max_int } in
      let d_wide, s_wide = Bb.decompose ~options:wide ~library acg in
      let d_def, s_def = Bb.decompose ~library acg in
      if not (Decomposition.is_valid_for acg d_wide) then
        fail "wide-beam decomposition is not valid for the ACG"
      else if not (Decomposition.is_valid_for acg d_def) then
        fail "default decomposition is not valid for the ACG"
      else if s_wide.Bb.timed_out then Ok () (* budget exhausted: no claim *)
      else if not (approx_eq s_wide.Bb.best_cost oracle) then
        fail "wide-beam decompose cost %g, exhaustive optimum %g" s_wide.Bb.best_cost
          oracle
      else
        match Decomposition.cost Cost.Edge_count acg d_wide with
        | c when not (approx_eq c s_wide.Bb.best_cost) ->
            fail "wide-beam best_cost %g but its decomposition recosts to %g"
              s_wide.Bb.best_cost c
        | _ ->
            if s_def.Bb.best_cost +. 1e-9 < oracle then
              fail "default decompose cost %g beats the exhaustive optimum %g"
                s_def.Bb.best_cost oracle
            else if s_def.Bb.best_cost > float_of_int (D.num_edges g) +. 1e-9 then
              fail "default decompose cost %g exceeds the all-remainder cost %d"
                s_def.Bb.best_cost (D.num_edges g)
            else Ok ())

let prop_bisection acg =
  let g = Acg.graph acg in
  let n = D.num_vertices g in
  if n < 2 then Ok ()
  else
    let rng = Prng.create ~seed:(graph_seed g) in
    let half, cut = T.min_bisection_cut ~rng g in
    let k = D.Vset.cardinal half in
    if k <> n / 2 && k <> n - (n / 2) then
      fail "heuristic half has %d of %d vertices: not balanced" k n
    else if not (D.Vset.subset half (D.vertices g)) then
      fail "heuristic half contains unknown vertices"
    else
      let recount = Bisection.cut_size g half in
      let _, best = Bisection.min_cut g in
      if recount <> cut then
        fail "heuristic reports cut %d but its half cuts %d pairs" cut recount
      else if cut < best then
        fail "heuristic cut %d below the brute-force optimum %d" cut best
      else Ok ()

let prop_vf2 library acg =
  let target = Acg.graph acg in
  (* the naive enumerator is the ground truth, but its unpruned
     backtracking explodes on the dense large size class; beyond its
     range the two production engines still cross-check each other *)
  let naive_in_range = D.num_vertices target <= 8 in
  List.fold_left
    (fun acc entry ->
      match acc with
      | Error _ -> acc
      | Ok () ->
          let pattern = entry.L.prim.P.repr in
          let name = entry.L.prim.P.name in
          if D.num_vertices pattern > D.num_vertices target then Ok ()
          else
            let fast = Vf2.find_all ~pattern ~target () in
            let reference = Vf2_map.find_all ~pattern ~target () in
            if Iso.canonical fast <> Iso.canonical reference then
              fail "%s: CSR VF2 finds %d matches, map VF2 %d (or different maps)"
                name (List.length fast) (List.length reference)
            else if
              not (List.for_all (Vf2.is_monomorphism ~pattern ~target) fast)
            then fail "%s: VF2 returned a non-monomorphism" name
            else if not naive_in_range then Ok ()
            else
              let naive = Iso.canonical (Iso.find_all ~pattern ~target) in
              if Iso.canonical fast <> naive then
                fail "%s: CSR VF2 finds %d matches, the naive oracle %d (or different maps)"
                  name (List.length fast) (List.length naive)
              else
                let sets =
                  Vf2.find_distinct_images ~pattern ~target ()
                  |> List.map (fun m -> Vf2.edge_image ~pattern m)
                  |> List.sort_uniq compare
                in
                if sets <> Iso.covered_sets ~pattern ~target then
                  fail "%s: distinct covered-edge-set families disagree" name
                else Ok ())
    (Ok ()) library

let fuzz_tech = Tech.cmos_180nm

(* the grid must place every vertex id the ACG mentions, and ids need not
   be contiguous, so size it by the maximum id (cf. Runner.grid_floorplan) *)
let fuzz_fp acg =
  let max_id = D.fold_vertices (fun v m -> max v m) (Acg.graph acg) 1 in
  Fp.grid (Fp.uniform_cores ~n:max_id ~size_mm:2.0)

let prop_cost library acg =
  let d, _ = Bb.decompose ~library acg in
  let edge_prod = Decomposition.cost Cost.Edge_count acg d in
  let edge_oracle = Recost.decomposition_cost Cost.Edge_count acg d in
  if not (approx_eq edge_prod edge_oracle) then
    fail "edge-count cost: production %g, first-principles %g" edge_prod edge_oracle
  else
    let c = Cost.Energy { tech = fuzz_tech; fp = fuzz_fp acg } in
    let prod = Decomposition.cost c acg d in
    let oracle = Recost.decomposition_cost c acg d in
    if not (approx_eq prod oracle) then
      fail "energy cost: production %.6f pJ, first-principles %.6f pJ" prod oracle
    else Ok ()

let prop_deadlock library acg =
  let d, _ = Bb.decompose ~library acg in
  let arch = Syn.of_decomposition acg d in
  let prod_edges = List.sort compare (Dead.channel_dependency_graph arch) in
  let oracle_edges = Cdg.cdg_edges arch in
  if prod_edges <> oracle_edges then
    fail "CDG edge sets differ: production %d edges, oracle %d"
      (List.length prod_edges) (List.length oracle_edges)
  else
    let report = Dead.analyze arch in
    let free_prod = Dead.is_deadlock_free arch in
    let free_oracle = Cdg.is_deadlock_free arch in
    if free_prod <> free_oracle then
      fail "is_deadlock_free %b, independent CDG check says %b" free_prod free_oracle
    else if (report.Dead.cdg_cycle = None) <> free_oracle then
      fail "analyze reports %s but the CDG is %s"
        (if report.Dead.cdg_cycle = None then "no cycle" else "a cycle")
        (if free_oracle then "acyclic" else "cyclic")
    else if report.Dead.vcs_needed < 1 then
      fail "vcs_needed = %d < 1" report.Dead.vcs_needed
    else if free_oracle && report.Dead.vcs_needed <> 1 then
      fail "deadlock-free routing but vcs_needed = %d" report.Dead.vcs_needed
    else Ok ()

let prop_partition library acg =
  let d, _ = Bb.decompose ~library acg in
  let covered =
    List.concat_map (fun m -> m.Matching.covered) d.Decomposition.matchings
  in
  let all =
    List.sort D.Edge.compare (covered @ D.edges d.Decomposition.remainder)
  in
  if all <> D.edges (Acg.graph acg) then
    fail "matchings + remainder do not partition the ACG edges (Eq. 2)"
  else if not (Decomposition.is_valid_for acg d) then
    fail "is_valid_for rejects the returned decomposition"
  else Ok ()

let prop_routes library acg =
  let d, _ = Bb.decompose ~library acg in
  let arch = Syn.of_decomposition acg d in
  if not (Syn.routes_valid arch) then
    fail "routes_valid is false on a synthesized architecture"
  else
    let g = Acg.graph acg in
    let missing =
      List.filter (fun (u, v) -> Syn.route arch ~src:u ~dst:v = None) (D.edges g)
    in
    if missing <> [] then fail "%d ACG flows have no route" (List.length missing)
    else
      (* independent load recomputation: the aggregate bandwidth-hops of the
         per-link load map must equal the sum over flows of bw x hops *)
      let expect =
        List.fold_left
          (fun acc (u, v) ->
            match Syn.route arch ~src:u ~dst:v with
            | None -> acc
            | Some p ->
                acc +. (Acg.bandwidth acg u v *. float_of_int (List.length p - 1)))
          0. (D.edges g)
      in
      let total =
        D.Edge_map.fold (fun _ l acc -> acc +. l) (Syn.link_load acg arch) 0.
      in
      if not (approx_eq expect total) then
        fail "aggregate link load %.9f, recomputed from routes %.9f" total expect
      else Ok ()

(* Differential check of the graceful-degradation layer: fail a few links,
   reroute statically, and verify against the brute-force path search that
   (a) no degraded route crosses a failed link, (b) the degraded table is
   valid, and (c) the disconnected-flow verdicts are exactly the flows the
   oracle cannot connect while avoiding the failed links. *)
let prop_reroute library acg =
  let d, _ = Bb.decompose ~library acg in
  let arch = Syn.of_decomposition acg d in
  let links = Noc_resil.Fault.undirected_links arch in
  if links = [] then Ok ()
  else begin
    let rng = Prng.create ~seed:(graph_seed (Acg.graph acg) lxor 0x7e57ab1e) in
    let k = 1 + Prng.int rng (min 3 (List.length links)) in
    let failed = List.sort compare (Prng.sample rng k links) in
    let faults = List.map (fun (u, v) -> Noc_resil.Fault.link u v) failed in
    let out = Noc_resil.Reroute.apply arch ~faults in
    let norm (a, b) = if a <= b then (a, b) else (b, a) in
    let crosses path =
      let rec go = function
        | a :: (b :: _ as rest) -> List.mem (norm (a, b)) failed || go rest
        | [ _ ] | [] -> false
      in
      go path
    in
    let degraded = out.Noc_resil.Reroute.arch in
    let bad =
      D.Edge_map.fold
        (fun f p acc -> if crosses p then f :: acc else acc)
        degraded.Syn.routes []
    in
    if bad <> [] then fail "%d degraded routes traverse a failed link" (List.length bad)
    else if not (Syn.routes_valid degraded) then fail "degraded routing table is invalid"
    else begin
      let flows = D.edges (Acg.graph acg) in
      let parts =
        List.sort compare
          (out.Noc_resil.Reroute.kept @ out.Noc_resil.Reroute.rerouted
         @ out.Noc_resil.Reroute.disconnected)
      in
      if parts <> List.sort compare flows then
        fail "kept/rerouted/disconnected do not partition the flows"
      else
        List.fold_left
          (fun acc (s, dst) ->
            match acc with
            | Error _ -> acc
            | Ok () ->
                let oracle_reaches =
                  Paths.exists_path ~banned_links:failed arch.Syn.topology ~src:s ~dst
                in
                let claimed_disconnected =
                  List.mem (s, dst) out.Noc_resil.Reroute.disconnected
                in
                if claimed_disconnected = oracle_reaches then
                  fail "flow %d->%d: reroute says %s, brute-force path search says %s" s
                    dst
                    (if claimed_disconnected then "disconnected" else "connected")
                    (if oracle_reaches then "a path survives" else "no path survives")
                else if oracle_reaches && Syn.route degraded ~src:s ~dst = None then
                  fail "flow %d->%d: connected but lost its route" s dst
                else Ok ())
          (Ok ()) flows
    end
  end

(* The anytime/fallback contract: under a budget far too small to finish,
   a fallback-enabled search must still return a valid decomposition with
   a finite cost no worse than all-remainder, and the reported optimality
   gap must bracket the true optimum whenever the exhaustive oracle is in
   range — gap_pct is measured against the root lower bound lb0 <= opt,
   so best <= opt * (1 + gap/100) has to hold. *)
let prop_fallback_gap library acg =
  let g = Acg.graph acg in
  let options = { Bb.default_options with fallback = true } in
  let budget = Bb.Budget.(default |> with_timeout_s None |> with_max_nodes 25) in
  let d, st = Bb.decompose ~options ~budget ~library acg in
  if not (Decomposition.is_valid_for acg d) then
    fail "fallback decomposition is not valid for the ACG"
  else if not (Float.is_finite st.Bb.best_cost) then
    fail "fallback-enabled search returned no incumbent"
  else if st.Bb.best_cost > float_of_int (D.num_edges g) +. 1e-9 then
    fail "fallback cost %g exceeds the all-remainder cost %d" st.Bb.best_cost
      (D.num_edges g)
  else
    match st.Bb.gap_pct with
    | Some gap when gap < 0.0 -> fail "negative optimality gap %g%%" gap
    | Some _ when not st.Bb.timed_out ->
        fail "optimality gap reported for a completed search"
    | gap -> (
        match Exact.optimal_cost ~library g with
        | exception Invalid_argument m when contains_substring m "state space" ->
            Ok () (* out of oracle range; feasibility checks above suffice *)
        | oracle ->
            if st.Bb.best_cost +. 1e-9 < oracle then
              fail "fallback cost %g beats the exhaustive optimum %g" st.Bb.best_cost
                oracle
            else (
              match gap with
              | Some gap
                when st.Bb.best_cost > (oracle *. (1. +. (gap /. 100.))) +. 1e-6 ->
                  fail "cost %g outside the reported %g%% gap of the optimum %g"
                    st.Bb.best_cost gap oracle
              | _ -> Ok ()))

let props library =
  [
    ("decompose-oracle", prop_decompose library);
    ("bisection-oracle", prop_bisection);
    ("vf2-naive", prop_vf2 library);
    ("cost-recompute", prop_cost library);
    ("deadlock-cdg", prop_deadlock library);
    ("edge-partition", prop_partition library);
    ("routes-valid", prop_routes library);
    ("reroute-avoids-faults", prop_reroute library);
    ("fallback-gap", prop_fallback_gap library);
  ]

let check ?(library = L.default ()) name acg =
  match List.assoc_opt name (props library) with
  | None -> Error (Printf.sprintf "unknown property %S" name)
  | Some p -> ( try p acg with e -> Error ("exception: " ^ Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)

let rebuild acg ~vertices ~edges =
  let g = D.of_edges ~vertices edges in
  let volume =
    List.fold_left
      (fun m (u, v) -> D.Edge_map.add (u, v) (Acg.volume acg u v) m)
      D.Edge_map.empty edges
  in
  let bandwidth =
    List.fold_left
      (fun m (u, v) -> D.Edge_map.add (u, v) (Acg.bandwidth acg u v) m)
      D.Edge_map.empty edges
  in
  Acg.make ~graph:g ~volume ~bandwidth ()

let shrink ?(library = L.default ()) ~property acg0 =
  let failing a = Result.is_error (check ~library property a) in
  let steps = ref 0 in
  let cur = ref acg0 in
  let improved = ref true in
  while !improved do
    improved := false;
    let g = Acg.graph !cur in
    let vertices = D.vertex_list g in
    let edges = D.edges g in
    let candidates =
      List.map
        (fun e -> rebuild !cur ~vertices ~edges:(List.filter (( <> ) e) edges))
        edges
      @ List.filter_map
          (fun v ->
            if D.degree g v = 0 && List.length vertices > 1 then
              Some (rebuild !cur ~vertices:(List.filter (( <> ) v) vertices) ~edges)
            else None)
          vertices
    in
    try
      List.iter
        (fun cand ->
          if failing cand then begin
            cur := cand;
            incr steps;
            improved := true;
            raise Exit
          end)
        candidates
    with Exit -> ()
  done;
  (!cur, !steps)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let run ?(observe = Obs.disabled) ?(library = L.default ()) ?properties ~seed
    ~cases () =
  let t0 = Timer.now_mono_s () in
  let names =
    match properties with
    | None -> property_names
    | Some ps ->
        List.iter
          (fun p ->
            if not (List.mem p property_names) then
              invalid_arg (Printf.sprintf "Fuzz.run: unknown property %S" p))
          ps;
        List.filter (fun n -> List.mem n ps) property_names
  in
  let failed : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let failures = ref [] in
  let total_shrink = ref 0 in
  let checks = ref 0 in
  for i = 0 to cases - 1 do
    let case_seed = seed + i in
    let acg = gen_acg ~rng:(Prng.create ~seed:case_seed) in
    List.iter
      (fun name ->
        if not (Hashtbl.mem failed name) then begin
          incr checks;
          match check ~library name acg with
          | Ok () -> ()
          | Error _ ->
              (* one shrunk counterexample per property per run *)
              Hashtbl.replace failed name ();
              let small, steps = shrink ~library ~property:name acg in
              total_shrink := !total_shrink + steps;
              let detail =
                match check ~library name small with
                | Error d -> d
                | Ok () -> "(property passed again after shrinking)"
              in
              failures :=
                { property = name; case_seed; detail; acg = small; shrink_steps = steps }
                :: !failures
        end)
      names
  done;
  let report =
    {
      cases;
      properties = List.length names;
      failures = List.rev !failures;
      shrink_steps = !total_shrink;
      elapsed_s = Timer.now_mono_s () -. t0;
    }
  in
  if Obs.enabled observe then begin
    Obs.Counter.add (Obs.counter observe "fuzz.cases") cases;
    Obs.Counter.add (Obs.counter observe "fuzz.checks") !checks;
    Obs.Counter.add (Obs.counter observe "fuzz.failures") (List.length report.failures);
    Obs.Counter.add (Obs.counter observe "fuzz.shrink_steps") report.shrink_steps
  end;
  report

(* ------------------------------------------------------------------ *)
(* Corpus                                                              *)

let rec mkdirs dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let sanitize s = String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

let save_failure ~dir f =
  mkdirs dir;
  let path = Filename.concat dir (Printf.sprintf "%s-seed%d.acg" f.property f.case_seed) in
  let oc = open_out path in
  Printf.fprintf oc
    "# nocsynth fuzz counterexample (shrunk %d steps)\n\
     # property: %s\n\
     # seed: %d\n\
     # detail: %s\n\
     %s"
    f.shrink_steps f.property f.case_seed (sanitize f.detail)
    (Acg_io.to_string f.acg);
  close_out oc;
  path

let header_value ~key line =
  let prefix = "# " ^ key ^ ":" in
  let np = String.length prefix in
  if String.length line >= np && String.sub line 0 np = prefix then
    Some (String.trim (String.sub line np (String.length line - np)))
  else None

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let replay ?(observe = Obs.disabled) ?(library = L.default ()) ~dir () =
  let files =
    if Sys.file_exists dir && Sys.is_directory dir then
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".acg")
      |> List.sort compare
    else []
  in
  let failures = ref [] in
  List.iter
    (fun file ->
      let contents = read_file (Filename.concat dir file) in
      let prop =
        String.split_on_char '\n' contents
        |> List.find_map (header_value ~key:"property")
      in
      match Acg_io.parse contents with
      | Error (`Msg m) -> failures := (file, "unparseable corpus entry: " ^ m) :: !failures
      | Ok acg ->
          let names =
            match prop with
            | Some p when List.mem p property_names -> [ p ]
            | _ -> property_names
          in
          List.iter
            (fun name ->
              match check ~library name acg with
              | Ok () -> ()
              | Error d ->
                  failures := (file, Printf.sprintf "%s: %s" name d) :: !failures)
            names)
    files;
  if Obs.enabled observe then begin
    Obs.Counter.add (Obs.counter observe "fuzz.corpus_size") (List.length files);
    Obs.Counter.add (Obs.counter observe "fuzz.corpus_failures") (List.length !failures)
  end;
  (List.length files, List.rev !failures)

let pp_report ppf r =
  Format.fprintf ppf "fuzz: %d cases x %d properties in %.2f s, %d failure%s, %d shrink step%s"
    r.cases r.properties r.elapsed_s (List.length r.failures)
    (if List.length r.failures = 1 then "" else "s")
    r.shrink_steps
    (if r.shrink_steps = 1 then "" else "s");
  List.iter
    (fun f ->
      Format.fprintf ppf "@.  FAIL %s (seed %d, shrunk %d steps): %s@.  %s"
        f.property f.case_seed f.shrink_steps f.detail
        (String.concat " | "
           (List.map (fun (u, v) -> Printf.sprintf "%d->%d" u v)
              (D.edges (Acg.graph f.acg)))))
    r.failures
