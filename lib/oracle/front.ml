module Pareto = Noc_explore.Pareto
module Explore = Noc_explore.Explore
module Mapping = Noc_core.Mapping
module Acg = Noc_core.Acg

type t = {
  points : Explore.point list;  (** every design point of the space, evaluated *)
  front : Explore.point list;  (** exact non-dominated subset, canonical order *)
  ref_point : Pareto.vector;
  hypervolume : float;
}

let max_cores_guard = 6

let dominated_by_some vs v =
  List.exists (fun w -> Pareto.dominates w v) vs

(* exact non-dominated subset by the definition alone: keep a point iff no
   other evaluated point dominates it; canonicalize with the same order the
   driver uses so fronts compare with (=) *)
let exact_front points =
  let vecs = List.map (fun (p : Explore.point) -> p.Explore.vec) points in
  points
  |> List.filter (fun (p : Explore.point) -> not (dominated_by_some vecs p.Explore.vec))
  |> List.sort (fun (a : Explore.point) b ->
         match Pareto.compare_vector a.Explore.vec b.Explore.vec with
         | 0 -> compare a.Explore.index b.Explore.index
         | c -> c)

(* |union of boxes [v, ref]| by inclusion-exclusion over all 2^n non-empty
   subsets: a subset's intersection is the box of the component-wise
   maxima.  Exponential and obviously correct - the point of an oracle. *)
let hypervolume_ie ~(ref_point : Pareto.vector) vs =
  let vs =
    List.filter
      (fun (v : Pareto.vector) ->
        v.Pareto.energy_pj < ref_point.Pareto.energy_pj
        && v.Pareto.latency < ref_point.Pareto.latency
        && v.Pareto.area_mm2 < ref_point.Pareto.area_mm2)
      vs
    (* duplicate vectors span the same box; drop them so the subset count
       reflects distinct boxes only *)
    |> List.sort_uniq compare
  in
  let arr = Array.of_list vs in
  let n = Array.length arr in
  if n > 20 then invalid_arg "Front.hypervolume_ie: more than 20 boxes";
  let total = ref 0.0 in
  for mask = 1 to (1 lsl n) - 1 do
    let corner = ref None and bits = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        incr bits;
        let v = arr.(i) in
        corner :=
          Some
            (match !corner with
            | None -> v
            | Some c ->
                {
                  Pareto.energy_pj = Float.max c.Pareto.energy_pj v.Pareto.energy_pj;
                  latency = Float.max c.Pareto.latency v.Pareto.latency;
                  area_mm2 = Float.max c.Pareto.area_mm2 v.Pareto.area_mm2;
                })
      end
    done;
    match !corner with
    | None -> ()
    | Some c ->
        let vol =
          (ref_point.Pareto.energy_pj -. c.Pareto.energy_pj)
          *. (ref_point.Pareto.latency -. c.Pareto.latency)
          *. (ref_point.Pareto.area_mm2 -. c.Pareto.area_mm2)
        in
        let sign = if !bits land 1 = 1 then 1.0 else -1.0 in
        total := !total +. (sign *. vol)
  done;
  !total

(* |union of boxes| by cell decomposition: the distinct coordinate values
   cut the dominated region into axis-aligned cells inside which dominance
   is constant, so summing the volume of every cell whose lower corner is
   dominated is exact for any number of boxes.  O(n^4), no subset
   explosion - the oracle for fronts past the inclusion-exclusion guard. *)
let hypervolume_grid ~(ref_point : Pareto.vector) vs =
  let vs =
    List.filter
      (fun (v : Pareto.vector) ->
        v.Pareto.energy_pj < ref_point.Pareto.energy_pj
        && v.Pareto.latency < ref_point.Pareto.latency
        && v.Pareto.area_mm2 < ref_point.Pareto.area_mm2)
      vs
  in
  let axis proj limit =
    Array.of_list (List.sort_uniq compare (limit :: List.map proj vs))
  in
  let xs = axis (fun v -> v.Pareto.energy_pj) ref_point.Pareto.energy_pj in
  let ys = axis (fun v -> v.Pareto.latency) ref_point.Pareto.latency in
  let zs = axis (fun v -> v.Pareto.area_mm2) ref_point.Pareto.area_mm2 in
  let dominated x y z =
    List.exists
      (fun (v : Pareto.vector) ->
        v.Pareto.energy_pj <= x && v.Pareto.latency <= y && v.Pareto.area_mm2 <= z)
      vs
  in
  let total = ref 0.0 in
  for i = 0 to Array.length xs - 2 do
    for j = 0 to Array.length ys - 2 do
      for k = 0 to Array.length zs - 2 do
        if dominated xs.(i) ys.(j) zs.(k) then
          total :=
            !total
            +. ((xs.(i + 1) -. xs.(i)) *. (ys.(j + 1) -. ys.(j)) *. (zs.(k + 1) -. zs.(k)))
      done
    done
  done;
  !total

let compute ?tech ?budget ?max_subset_bits ~library acg =
  let n = Acg.num_cores acg in
  if n > max_cores_guard then
    invalid_arg
      (Printf.sprintf "Front.compute: %d cores exceed the %d-core exhaustive guard" n
         max_cores_guard);
  (* full enumeration: every permutation (n! <= 720), every subset, every
     bandwidth scale - the same axes the driver builds when its mapping cap
     admits the whole permutation group *)
  let axes = Explore.axes ~max_mappings:720 ?max_subset_bits ~seed:0 ~library acg in
  let points =
    List.init (Explore.space_size axes) (fun i -> Explore.evaluate ?tech ?budget axes acg i)
  in
  let front = exact_front points in
  let ref_point =
    Pareto.reference_point (List.map (fun (p : Explore.point) -> p.Explore.vec) points)
  in
  let front_vecs = List.map (fun (p : Explore.point) -> p.Explore.vec) front in
  let distinct = List.length (List.sort_uniq compare front_vecs) in
  let hv =
    if distinct <= 20 then hypervolume_ie ~ref_point front_vecs
    else hypervolume_grid ~ref_point front_vecs
  in
  { points; front; ref_point; hypervolume = hv }
