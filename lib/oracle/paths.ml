module D = Noc_graph.Digraph

let norm (a, b) = if a <= b then (a, b) else (b, a)

let find_path ?(banned_links = []) ?(banned_switches = []) g ~src ~dst =
  let banned_links = List.map norm banned_links in
  let bad_link e = List.mem (norm e) banned_links in
  let bad_switch v = List.mem v banned_switches in
  if
    bad_switch src || bad_switch dst
    || (not (D.mem_vertex g src))
    || not (D.mem_vertex g dst)
  then None
  else
    let rec dfs visited node =
      if node = dst then Some [ dst ]
      else
        D.Vset.elements (D.succ g node)
        |> List.find_map (fun n ->
               if List.mem n visited || bad_switch n || bad_link (node, n) then None
               else Option.map (fun p -> node :: p) (dfs (n :: visited) n))
    in
    if src = dst then Some [ src ] else dfs [ src ] src

let exists_path ?banned_links ?banned_switches g ~src ~dst =
  find_path ?banned_links ?banned_switches g ~src ~dst <> None
