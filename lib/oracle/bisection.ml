module D = Noc_graph.Digraph

(* unordered adjacent pairs of the symmetric closure *)
let undirected_pairs g =
  D.fold_edges
    (fun u v acc -> D.Edge_set.add (min u v, max u v) acc)
    g D.Edge_set.empty

let cut_size g half =
  D.Edge_set.fold
    (fun (u, v) acc ->
      if D.Vset.mem u half <> D.Vset.mem v half then acc + 1 else acc)
    (undirected_pairs g) 0

let min_cut g =
  let vs = Array.of_list (D.vertex_list g) in
  let n = Array.length vs in
  if n > 20 then invalid_arg "Bisection.min_cut: graph too large for brute force";
  if n = 0 then (D.Vset.empty, 0)
  else begin
    let pairs = D.Edge_set.elements (undirected_pairs g) in
    let half = n / 2 in
    let best_set = ref D.Vset.empty and best_cut = ref max_int in
    let chosen = Array.make (max 1 half) (-1) in
    (* every ⌊n/2⌋-subset, in lexicographic order over vertex indices *)
    let rec go slot lo =
      if slot = half then begin
        let set =
          Array.fold_left (fun acc i -> D.Vset.add vs.(i) acc) D.Vset.empty chosen
        in
        let cut =
          List.fold_left
            (fun acc (u, v) ->
              if D.Vset.mem u set <> D.Vset.mem v set then acc + 1 else acc)
            0 pairs
        in
        if cut < !best_cut then begin
          best_cut := cut;
          best_set := set
        end
      end
      else
        for i = lo to n - 1 - (half - slot - 1) do
          chosen.(slot) <- i;
          go (slot + 1) (i + 1)
        done
    in
    if half = 0 then (D.Vset.empty, 0)
    else begin
      go 0 0;
      (!best_set, !best_cut)
    end
  end
